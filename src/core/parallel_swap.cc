#include "core/parallel_swap.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "graph/shard_store.h"
#include "graph/sharded_adjacency_file.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace semis {

namespace {

// Normalized key of an IS pair {w1, w2} (as in two_k_swap.cc).
uint64_t PairKey(VertexId a, VertexId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}
VertexId PairFirst(uint64_t key) { return static_cast<VertexId>(key >> 32); }
VertexId PairSecond(uint64_t key) {
  return static_cast<VertexId>(key & 0xFFFFFFFFull);
}

// Per-vertex commit decision of one round, written only by the worker
// scanning the vertex's record.
enum class Decision : uint8_t { kNone = 0, kEnter, kLeave, kDenied };

class ParallelSwapRun {
 public:
  ParallelSwapRun(const std::string& manifest_path,
                  ShardedAdjacencyManifest manifest,
                  const ParallelSwapOptions& options)
      : options_(options),
        manifest_path_(manifest_path),
        manifest_(std::move(manifest)),
        n_(manifest_.header.num_vertices),
        pool_(options.num_threads),
        worker_io_(pool_.size()),
        state_(n_),
        isn1_(n_, kInvalidVertex),
        isn2_(n_, kInvalidVertex),
        cnt_(n_),
        mark_r_(n_),
        decision_(n_, Decision::kNone),
        free_(n_, 0) {}

  // Exactly one of `initial_set` / `initial_states` is non-null; both
  // describe the same thing (initial IS membership per vertex).
  Status Execute(const BitVector* initial_set,
                 const std::vector<VState>* initial_states, AlgoResult* res);

 private:
  // Shard-local SC structures of the 2<->k discovery (Algorithm 4),
  // reset for every shard so discovery never depends on which worker
  // scans which shard.
  struct ShardContext {
    struct Bucket {
      std::vector<VertexId> anchors;
      std::vector<std::pair<VertexId, VertexId>> pairs;
      bool freed = false;
    };
    std::unordered_map<uint64_t, Bucket> buckets;
    std::unordered_map<VertexId, std::vector<uint64_t>> keys_with_w;
    // IS vertices this shard already marked for removal, and non-IS
    // vertices already consumed by a fired skeleton.
    std::unordered_set<VertexId> removed;
    std::unordered_set<VertexId> used;
    uint64_t sc_vertices = 0;

    size_t ApproxBytes() const {
      size_t bytes = 0;
      // Order-insensitive sums for memory accounting.
      // semis-lint: allow(unordered-iteration)
      for (const auto& kv : buckets) {
        bytes += sizeof(kv) + kv.second.anchors.capacity() * sizeof(VertexId) +
                 kv.second.pairs.capacity() *
                     sizeof(std::pair<VertexId, VertexId>);
      }
      // semis-lint: allow(unordered-iteration)
      for (const auto& kv : keys_with_w) {
        bytes += sizeof(kv) + kv.second.capacity() * sizeof(uint64_t);
      }
      bytes += (removed.size() + used.size()) * 2 * sizeof(VertexId);
      return bytes;
    }
  };

  VState State(VertexId v) const {
    return static_cast<VState>(state_[v].load(std::memory_order_relaxed));
  }
  void SetState(VertexId v, VState s) {
    state_[v].store(static_cast<uint8_t>(s), std::memory_order_relaxed);
  }
  bool MarkedR(VertexId v) const {
    return mark_r_[v].load(std::memory_order_relaxed) != 0;
  }
  bool IsAnchor(VertexId v) const { return isn2_[v] != kInvalidVertex; }

  /// A vertex joins the entering wave iff it is labeled A and every one of
  /// its ISN vertices was marked for removal. Evaluated against state
  /// frozen at the proposal-phase barrier, so it is scan-order free.
  bool EnterCandidate(VertexId v) const {
    if (State(v) != VState::kA) return false;
    if (!MarkedR(isn1_[v])) return false;
    const VertexId w2 = isn2_[v];
    return w2 == kInvalidVertex || MarkedR(w2);
  }

  // One full pass over the file: runs `per_shard(shard, worker)` for every
  // shard, distributed over the pool, short-circuiting a worker after its
  // first error. Returns the first per-worker error.
  template <typename PerShard>
  Status RunShardPass(PerShard&& per_shard) {
    std::vector<Status> worker_status(pool_.size());
    pool_.ParallelFor(
        manifest_.num_shards(), [&](size_t shard, size_t worker) {
          if (!worker_status[worker].ok()) return;
          worker_status[worker] =
              per_shard(static_cast<uint32_t>(shard), worker);
        });
    scans_started_++;
    for (const Status& s : worker_status) {
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  // Runs `fn(rec, worker)` over every record of every shard.
  template <typename Fn>
  Status ScanShards(Fn&& fn) {
    return RunShardPass([&](uint32_t shard, size_t worker) {
      return ScanOneShard(shard, worker, [&](const VertexRecordView& rec) {
        fn(rec, worker);
      });
    });
  }

  template <typename RecordFn>
  Status ScanOneShard(uint32_t shard, size_t worker, RecordFn&& fn) {
    AdjacencyShardReader reader(&worker_io_[worker]);
    SEMIS_RETURN_IF_ERROR(reader.Open(manifest_path_, manifest_, shard));
    VertexRecordView rec;
    bool has_next = false;
    while (true) {
      SEMIS_RETURN_IF_ERROR(reader.Next(&rec, &has_next));
      if (!has_next) break;
      fn(rec);
    }
    return reader.Close();
  }

  Status LabelScan();
  Status ProposalScan(RoundStats* round, AlgoResult* res);
  Status SwapScan();
  void ApplySwaps(RoundStats* round);
  Status FreeScan();
  Status JoinScan();
  uint64_t ApplyJoins(RoundStats* round);

  // --- proposal-scan helpers (shard-local, snapshot state only) ---
  bool IsLive(VertexId w, const ShardContext& ctx) const {
    return State(w) == VState::kI && ctx.removed.count(w) == 0;
  }
  void MarkRemove(VertexId w, ShardContext* ctx) {
    mark_r_[w].store(1, std::memory_order_relaxed);
    ctx->removed.insert(w);
  }
  void StampNeighbors(const VertexRecordView& rec, size_t worker);
  bool Stamped(VertexId v, size_t worker) const {
    return stamp_[worker][v] == token_[worker];
  }
  void ProposalVertex(const VertexRecordView& rec, size_t worker,
                      ShardContext* ctx, RoundStats* round);
  void TryTwoKSwap(const VertexRecordView& rec, size_t worker,
                   ShardContext* ctx, RoundStats* round);

  const ParallelSwapOptions& options_;
  const std::string manifest_path_;
  const ShardedAdjacencyManifest manifest_;
  const uint64_t n_;
  ThreadPool pool_;
  std::vector<IoStats> worker_io_;
  uint64_t scans_started_ = 0;

  // Shared vertex-state tables. `state_` is atomic because the label scan
  // relabels non-IS vertices while other workers test neighbors for
  // IS-ness; IS-ness itself never changes inside a scan, so relaxed
  // ordering cannot change any outcome.
  std::vector<std::atomic<uint8_t>> state_;
  std::vector<VertexId> isn1_;
  std::vector<VertexId> isn2_;
  std::vector<std::atomic<uint32_t>> cnt_;  // |ISN^-1(w)| per IS vertex
  std::vector<std::atomic<uint8_t>> mark_r_;
  std::vector<Decision> decision_;
  std::vector<uint8_t> free_;  // 1 = not in IS and no IS neighbor

  // Per-worker neighborhood stamps for O(1) adjacency tests against the
  // record in hand (two-k discovery only).
  std::vector<std::vector<uint32_t>> stamp_;
  std::vector<uint32_t> token_;

  // Per-round accumulators shared across workers (commutative adds only).
  std::atomic<uint64_t> round_one_k_{0};
  std::atomic<uint64_t> round_two_k_{0};
  std::atomic<uint64_t> sc_scan_vertices_{0};
  std::atomic<uint64_t> sc_scan_bytes_{0};

  uint64_t is_size_ = 0;
  uint64_t sc_peak_vertices_ = 0;
};

Status ParallelSwapRun::LabelScan() {
  for (uint64_t v = 0; v < n_; ++v) {
    cnt_[v].store(0, std::memory_order_relaxed);
  }
  return ScanShards([this](const VertexRecordView& rec, size_t) {
    const VertexId u = rec.id;
    if (State(u) == VState::kI) return;
    VertexId e1 = kInvalidVertex, e2 = kInvalidVertex;
    uint32_t count = 0;
    for (uint32_t i = 0; i < rec.degree && count < 3; ++i) {
      const VertexId nb = rec.neighbors[i];
      if (State(nb) == VState::kI) {
        if (count == 0) {
          e1 = nb;
        } else if (count == 1) {
          e2 = nb;
        }
        count++;
      }
    }
    if (count == 1) {
      SetState(u, VState::kA);
      isn1_[u] = e1;
      isn2_[u] = kInvalidVertex;
      cnt_[e1].fetch_add(1, std::memory_order_relaxed);
    } else if (count == 2 && options_.enable_two_k) {
      SetState(u, VState::kA);
      isn1_[u] = e1;
      isn2_[u] = e2;
    } else {
      SetState(u, VState::kN);
      isn1_[u] = kInvalidVertex;
      isn2_[u] = kInvalidVertex;
    }
  });
}

void ParallelSwapRun::StampNeighbors(const VertexRecordView& rec,
                                     size_t worker) {
  if (stamp_[worker].empty()) stamp_[worker].assign(n_, 0);
  if (++token_[worker] == 0) {  // wrapped: clear and restart
    std::fill(stamp_[worker].begin(), stamp_[worker].end(), 0);
    token_[worker] = 1;
  }
  for (uint32_t i = 0; i < rec.degree; ++i) {
    stamp_[worker][rec.neighbors[i]] = token_[worker];
  }
}

void ParallelSwapRun::TryTwoKSwap(const VertexRecordView& rec, size_t worker,
                                  ShardContext* ctx, RoundStats* round) {
  // Shard-local Algorithm 4: register u in SC(w1, w2), pair it with an
  // earlier compatible anchor, and fire the 2-3 skeleton when u is the
  // third mutually non-adjacent vertex. `ctx` carries the scan-order
  // context; it never leaves the shard, so discovery is identical no
  // matter which worker runs it.
  const VertexId u = rec.id;
  const bool anchor = IsAnchor(u);
  const VertexId w1 = isn1_[u];
  const VertexId w2 = isn2_[u];
  StampNeighbors(rec, worker);

  if (anchor && IsLive(w1, *ctx) && IsLive(w2, *ctx)) {
    const uint64_t key = PairKey(w1, w2);
    auto [it, inserted] = ctx->buckets.try_emplace(key);
    ShardContext::Bucket& bucket = it->second;
    if (inserted) {
      ctx->keys_with_w[w1].push_back(key);
      ctx->keys_with_w[w2].push_back(key);
    }
    if (bucket.pairs.size() < options_.max_pairs_per_bucket) {
      VertexId partner = kInvalidVertex;
      for (VertexId v : bucket.anchors) {
        if (v != u && ctx->used.count(v) == 0 && !Stamped(v, worker)) {
          partner = v;
          break;
        }
      }
      if (partner != kInvalidVertex) bucket.pairs.emplace_back(u, partner);
    }
    bucket.anchors.push_back(u);
    ctx->sc_vertices++;
  } else if (!anchor && IsLive(w1, *ctx)) {
    auto kit = ctx->keys_with_w.find(w1);
    if (kit != ctx->keys_with_w.end()) {
      for (uint64_t key : kit->second) {
        ShardContext::Bucket& bucket = ctx->buckets[key];
        if (bucket.freed ||
            bucket.pairs.size() >= options_.max_pairs_per_bucket) {
          continue;
        }
        VertexId partner = kInvalidVertex;
        for (VertexId v : bucket.anchors) {
          if (v != u && ctx->used.count(v) == 0 && !Stamped(v, worker)) {
            partner = v;
            break;
          }
        }
        if (partner != kInvalidVertex) {
          bucket.pairs.emplace_back(partner, u);  // anchor first
          ctx->sc_vertices++;
          break;
        }
      }
    }
  }

  // 2-3 skeleton with u as the third vertex.
  const uint64_t single_key = anchor ? PairKey(w1, w2) : 0;
  const std::vector<uint64_t>* keys = nullptr;
  std::vector<uint64_t> one_key;
  if (anchor) {
    if (IsLive(w1, *ctx) && IsLive(w2, *ctx)) {
      one_key.push_back(single_key);
      keys = &one_key;
    }
  } else {
    auto kit = ctx->keys_with_w.find(w1);
    if (kit != ctx->keys_with_w.end()) keys = &kit->second;
  }
  if (keys == nullptr) return;
  for (uint64_t key : *keys) {
    auto bit = ctx->buckets.find(key);
    if (bit == ctx->buckets.end() || bit->second.freed) continue;
    const VertexId kw1 = PairFirst(key), kw2 = PairSecond(key);
    if (!IsLive(kw1, *ctx) || !IsLive(kw2, *ctx)) continue;
    for (const auto& [v1, v2] : bit->second.pairs) {
      if (v1 == u || v2 == u) continue;
      if (ctx->used.count(v1) != 0 || ctx->used.count(v2) != 0) continue;
      if (Stamped(v1, worker) || Stamped(v2, worker)) continue;
      // Fire: (v1, v2, u) replace (kw1, kw2). The entering trio joins the
      // wave via the all-ISN-removed rule at the swap scan.
      ctx->used.insert(u);
      ctx->used.insert(v1);
      ctx->used.insert(v2);
      MarkRemove(kw1, ctx);
      MarkRemove(kw2, ctx);
      bit->second.freed = true;
      round->two_k_swaps++;  // per-round totals aggregated via atomics below
      return;
    }
  }
}

void ParallelSwapRun::ProposalVertex(const VertexRecordView& rec, size_t worker,
                                     ShardContext* ctx, RoundStats* round) {
  const VertexId u = rec.id;
  if (State(u) != VState::kA) return;
  if (ctx->used.count(u) != 0) return;  // already entering via a skeleton

  if (options_.enable_two_k) {
    TryTwoKSwap(rec, worker, ctx, round);
    if (ctx->used.count(u) != 0) return;
  }

  // 1-2 swap skeleton via the ISN^-1 counting trick (Section 5.4): u has
  // a non-adjacent partner sharing its single IS neighbor w iff
  // |ISN^-1(w)| >= x + 2, where x counts u's A neighbors pointing at w.
  // Only w's removal is marked here; u (and every other A vertex whose
  // whole ISN leaves) joins the entering wave in the swap scan, which is
  // exactly the paper's follower-join rule evaluated wave-wide.
  if (IsAnchor(u)) return;  // an anchor's second IS neighbor stays
  const VertexId w = isn1_[u];
  if (!IsLive(w, *ctx)) return;
  uint32_t x = 0;
  for (uint32_t i = 0; i < rec.degree; ++i) {
    const VertexId nb = rec.neighbors[i];
    if (State(nb) == VState::kA && !IsAnchor(nb) && isn1_[nb] == w) x++;
  }
  if (cnt_[w].load(std::memory_order_relaxed) >= x + 2) {
    MarkRemove(w, ctx);
    round->one_k_swaps++;
  }
}

Status ParallelSwapRun::ProposalScan(RoundStats* round, AlgoResult* res) {
  sc_scan_vertices_.store(0, std::memory_order_relaxed);
  sc_scan_bytes_.store(0, std::memory_order_relaxed);
  std::atomic<uint64_t> one_k{0}, two_k{0};
  SEMIS_RETURN_IF_ERROR(RunShardPass([&](uint32_t shard, size_t worker) {
    ShardContext ctx;
    RoundStats local;
    Status s = ScanOneShard(shard, worker, [&](const VertexRecordView& rec) {
      ProposalVertex(rec, worker, &ctx, &local);
    });
    one_k.fetch_add(local.one_k_swaps, std::memory_order_relaxed);
    two_k.fetch_add(local.two_k_swaps, std::memory_order_relaxed);
    sc_scan_vertices_.fetch_add(ctx.sc_vertices, std::memory_order_relaxed);
    sc_scan_bytes_.fetch_add(ctx.ApproxBytes(), std::memory_order_relaxed);
    return s;
  }));
  round->one_k_swaps = one_k.load();
  round->two_k_swaps = two_k.load();
  const uint64_t sc_now = sc_scan_vertices_.load();
  sc_peak_vertices_ = std::max(sc_peak_vertices_, sc_now);
  res->memory.Set("sc", sc_scan_bytes_.load());
  res->memory.Set("sc", 0);  // freed at end of scan; Set records the peak
  return Status::OK();
}

Status ParallelSwapRun::SwapScan() {
  return ScanShards([this](const VertexRecordView& rec, size_t) {
    const VertexId u = rec.id;
    if (State(u) == VState::kI) {
      if (MarkedR(u)) decision_[u] = Decision::kLeave;
      return;
    }
    if (!EnterCandidate(u)) return;
    // Lowest vertex id wins among adjacent entering candidates; a
    // neighbor that stays in the IS blocks unconditionally (cannot happen
    // for an A vertex whose whole ISN leaves, but kept as an invariant
    // guard). The rule reads only barrier-frozen data, so the outcome is
    // identical regardless of scan interleaving.
    bool denied = false;
    for (uint32_t i = 0; i < rec.degree; ++i) {
      const VertexId nb = rec.neighbors[i];
      if (State(nb) == VState::kI && !MarkedR(nb)) {
        denied = true;
        break;
      }
      if (nb < u && EnterCandidate(nb)) {
        denied = true;
        break;
      }
    }
    decision_[u] = denied ? Decision::kDenied : Decision::kEnter;
  });
}

void ParallelSwapRun::ApplySwaps(RoundStats* round) {
  for (uint64_t v = 0; v < n_; ++v) {
    switch (decision_[v]) {
      case Decision::kLeave:
        SetState(static_cast<VertexId>(v), VState::kN);
        round->removed_is_vertices++;
        is_size_--;
        break;
      case Decision::kEnter:
        SetState(static_cast<VertexId>(v), VState::kI);
        round->new_is_vertices++;
        is_size_++;
        break;
      case Decision::kDenied:
        round->denied_promotions++;
        round->conflicts++;
        break;
      case Decision::kNone:
        break;
    }
    decision_[v] = Decision::kNone;
    mark_r_[v].store(0, std::memory_order_relaxed);
  }
}

Status ParallelSwapRun::FreeScan() {
  return ScanShards([this](const VertexRecordView& rec, size_t) {
    const VertexId u = rec.id;
    if (State(u) == VState::kI) {
      free_[u] = 0;
      return;
    }
    bool has_is_neighbor = false;
    for (uint32_t i = 0; i < rec.degree; ++i) {
      if (State(rec.neighbors[i]) == VState::kI) {
        has_is_neighbor = true;
        break;
      }
    }
    free_[u] = has_is_neighbor ? 0 : 1;
  });
}

Status ParallelSwapRun::JoinScan() {
  // 0<->1 swaps: a free vertex (no IS neighbor) joins iff it is the local
  // minimum among the free vertices of its closed neighborhood -- the
  // deterministic parallel counterpart of the sequential post-swap rule.
  return ScanShards([this](const VertexRecordView& rec, size_t) {
    const VertexId u = rec.id;
    if (!free_[u]) return;
    for (uint32_t i = 0; i < rec.degree; ++i) {
      const VertexId nb = rec.neighbors[i];
      if (nb < u && free_[nb]) return;
    }
    decision_[u] = Decision::kEnter;
  });
}

uint64_t ParallelSwapRun::ApplyJoins(RoundStats* round) {
  uint64_t joined = 0;
  for (uint64_t v = 0; v < n_; ++v) {
    if (decision_[v] == Decision::kEnter) {
      SetState(static_cast<VertexId>(v), VState::kI);
      joined++;
      is_size_++;
    }
    decision_[v] = Decision::kNone;
  }
  if (round != nullptr) {
    round->zero_one_swaps += joined;
    round->new_is_vertices += joined;
  }
  return joined;
}

Status ParallelSwapRun::Execute(const BitVector* initial_set,
                                const std::vector<VState>* initial_states,
                                AlgoResult* res) {
  res->memory.Add("state", n_ * sizeof(uint8_t));
  res->memory.Add("isn", 2 * n_ * sizeof(VertexId));
  res->memory.Add("counters", n_ * sizeof(uint32_t));
  res->memory.Add("marks", n_ * sizeof(uint8_t));
  res->memory.Add("decision", n_ * sizeof(Decision));
  res->memory.Add("free", n_ * sizeof(uint8_t));
  stamp_.resize(pool_.size());
  token_.assign(pool_.size(), 0);
  if (options_.enable_two_k) {
    // Stamps are allocated lazily per worker, but charge them up front:
    // every worker that touches a shard needs one.
    res->memory.Add("stamps", pool_.size() * n_ * sizeof(uint32_t));
  }

  for (uint64_t v = 0; v < n_; ++v) {
    const bool in = initial_set != nullptr
                        ? initial_set->Test(v)
                        : (*initial_states)[v] == VState::kI;
    SetState(static_cast<VertexId>(v), in ? VState::kI : VState::kN);
    if (in) is_size_++;
  }

  uint64_t stalled_rounds = 0;
  bool progress = true;
  while (progress &&
         (options_.max_rounds == 0 || res->rounds < options_.max_rounds)) {
    const uint64_t size_before = is_size_;
    RoundStats round;
    WallTimer round_timer;
    SEMIS_RETURN_IF_ERROR(LabelScan());
    SEMIS_RETURN_IF_ERROR(ProposalScan(&round, res));
    SEMIS_RETURN_IF_ERROR(SwapScan());
    ApplySwaps(&round);
    SEMIS_RETURN_IF_ERROR(FreeScan());
    SEMIS_RETURN_IF_ERROR(JoinScan());
    ApplyJoins(&round);
    round.is_size_after = is_size_;
    round.seconds = round_timer.ElapsedSeconds();
    res->round_stats.push_back(round);
    res->rounds++;
    progress = round.removed_is_vertices + round.new_is_vertices > 0;
    stalled_rounds = is_size_ > size_before ? 0 : stalled_rounds + 1;
    if (options_.stall_round_limit > 0 &&
        stalled_rounds >= options_.stall_round_limit) {
      break;
    }
  }

  if (options_.final_maximality_pass) {
    while (true) {
      SEMIS_RETURN_IF_ERROR(FreeScan());
      SEMIS_RETURN_IF_ERROR(JoinScan());
      if (ApplyJoins(nullptr) == 0) break;
    }
  }

  res->in_set = BitVector(n_);
  res->set_size = 0;
  for (uint64_t v = 0; v < n_; ++v) {
    if (State(static_cast<VertexId>(v)) == VState::kI) {
      res->in_set.Set(v);
      res->set_size++;
    }
  }
  res->memory.Add("result-bitset", res->in_set.MemoryBytes());
  res->peak_memory_bytes = res->memory.PeakBytes();
  res->sc_peak_vertices = sc_peak_vertices_;

  for (const IoStats& io : worker_io_) res->io.MergeFrom(io);
  res->io.sequential_scans += scans_started_;
  return Status::OK();
}

}  // namespace

namespace {

Status RunParallelSwapImpl(const std::string& manifest_path,
                           const BitVector* initial_set,
                           const std::vector<VState>* initial_states,
                           const ParallelSwapOptions& options,
                           AlgoResult* result) {
  WallTimer timer;
  AlgoResult res;
  // Resolve a journaled-store root so the per-worker shard readers open
  // the current epoch's files.
  ResolvedShardStore resolved;
  SEMIS_RETURN_IF_ERROR(ResolveShardStore(manifest_path, &resolved, &res.io));
  ShardedAdjacencyManifest manifest;
  SEMIS_RETURN_IF_ERROR(
      ReadShardedAdjacencyManifest(resolved.manifest_path, &manifest, &res.io));
  const uint64_t initial_size = initial_set != nullptr
                                    ? initial_set->size()
                                    : initial_states->size();
  if (initial_size != manifest.header.num_vertices) {
    return Status::InvalidArgument(
        "initial set size does not match graph vertex count");
  }
  ParallelSwapRun run(resolved.manifest_path, std::move(manifest), options);
  SEMIS_RETURN_IF_ERROR(run.Execute(initial_set, initial_states, &res));
  res.seconds = timer.ElapsedSeconds();
  *result = std::move(res);
  return Status::OK();
}

}  // namespace

Status RunParallelSwap(const std::string& manifest_path,
                       const BitVector& initial_set,
                       const ParallelSwapOptions& options,
                       AlgoResult* result) {
  return RunParallelSwapImpl(manifest_path, &initial_set, nullptr, options,
                             result);
}

Status RunParallelSwap(const std::string& manifest_path,
                       const std::vector<VState>& initial_states,
                       const ParallelSwapOptions& options,
                       AlgoResult* result) {
  return RunParallelSwapImpl(manifest_path, nullptr, &initial_states, options,
                             result);
}

}  // namespace semis
