// Copyright (c) the semis authors.
// Incremental maintenance of an independent set under edge updates -- the
// paper's primary future-work item ("how our solutions can be extended to
// the incremental massive graphs with frequent updates").
//
// Model: the base graph lives in an adjacency file; updates arrive as
// edge insertions and deletions relative to that base. In memory we keep
// only O(|V|) bits of membership plus the update delta itself (the
// semi-external contract: deltas are assumed to fit, the base edges are
// not).
//
//   * InsertEdge(u, v): if both endpoints are in the set, the later-id
//     endpoint is evicted immediately -- independence is maintained
//     eagerly, O(1) per update.
//   * DeleteEdge(u, v): recorded; it can only create *maximality* slack,
//     never an independence violation.
//   * Repair(): one sequential scan of the base file (merged with the
//     delta) re-adds every vertex that lost all of its set neighbors --
//     the lazy counterpart, amortizing maximality restoration over many
//     updates exactly like the paper amortizes swaps over scans.
//
// Invariants: the set is independent w.r.t. the *updated* graph after
// every single operation; it is additionally maximal after Repair().
#ifndef SEMIS_CORE_INCREMENTAL_H_
#define SEMIS_CORE_INCREMENTAL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/bit_vector.h"
#include "util/common.h"
#include "util/status.h"

namespace semis {

/// Maintains an independent set over "base adjacency file + edge delta".
class IncrementalMis {
 public:
  IncrementalMis() = default;

  /// Binds the maintainer to a base file and a starting independent set
  /// over it (e.g. a Solver result). The set is copied.
  Status Initialize(const std::string& adjacency_path,
                    const BitVector& initial_set);

  /// Applies an edge insertion. Returns InvalidArgument for self-loops or
  /// out-of-range ids. Inserting an edge that already exists (in base or
  /// delta) is a no-op.
  Status InsertEdge(VertexId u, VertexId v);

  /// Applies an edge deletion (of a base or previously inserted edge).
  Status DeleteEdge(VertexId u, VertexId v);

  /// Restores maximality with one sequential scan of the base file,
  /// consulting the delta for every record. Safe to call at any time.
  Status Repair();

  /// Current membership (always independent; maximal right after
  /// Repair()).
  const BitVector& set() const { return set_; }

  /// Current |set|.
  uint64_t set_size() const { return set_size_; }

  /// Updates applied since Initialize().
  uint64_t updates_applied() const { return updates_; }

  /// Vertices evicted by insertions since the last Repair().
  uint64_t pending_evictions() const { return pending_evictions_; }

 private:
  static uint64_t EdgeKey(VertexId u, VertexId v) {
    if (u > v) std::swap(u, v);
    return (static_cast<uint64_t>(u) << 32) | v;
  }

  std::string path_;
  uint64_t n_ = 0;
  BitVector set_;
  uint64_t set_size_ = 0;
  // Delta: inserted edges (and their adjacency) and deleted edge keys.
  // The effective edge set is (base \ deleted) + inserted. `inserted_` may
  // overlap the base file (an insert can duplicate a base edge; we never
  // scan the base to find out) and `deleted_` may hold keys the base never
  // had (inert there) -- both redundancies are harmless, and tracking them
  // is what keeps a delete after a duplicate insert from resurrecting the
  // base copy.
  std::unordered_set<uint64_t> inserted_;
  std::unordered_set<uint64_t> deleted_;
  std::unordered_map<VertexId, std::vector<VertexId>> inserted_adj_;
  uint64_t updates_ = 0;
  uint64_t pending_evictions_ = 0;
};

}  // namespace semis

#endif  // SEMIS_CORE_INCREMENTAL_H_
