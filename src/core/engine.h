// Copyright (c) the semis authors.
// MisEngine: the resident form of the pipeline. One object owns the full
// open -> serve -> mutate -> republish lifecycle over a graph snapshot:
//
//   Open()       loads a SADJ file or SADJS manifest, runs the solve
//                pipeline (sort -> shard -> greedy -> swaps, exactly the
//                stages Solver used to wire inline), and publishes the
//                result as epoch 1.
//   Snapshot()   hands out an immutable, refcounted view of the current
//                epoch (solution bit-vector + |IS| + per-epoch stats).
//                Readers on any thread query it without ever blocking on
//                mutation; an epoch retires when its last reader drops
//                the reference (RCU via shared_ptr).
//   ApplyBatch() / Repair() / Compact()
//                run the ShardedStreamingMis machinery against a private
//                successor state. Published epochs are never touched.
//   Publish()    freezes the successor into a new epoch and atomically
//                swaps it in as the current snapshot.
//
// Solver::SolveFile / Solver::SolveShardedFile are thin wrappers over
// Open() + open_result(); semis_cli's `update` and `engine` subcommands
// drive the full lifecycle.
//
// Threading contract: Snapshot() (and the views it returns) may be used
// concurrently from any number of threads. The mutating calls -- Open,
// Prepare, ApplyBatch, Repair, Compact, Publish, Close -- must be
// externally serialized (one mutator at a time); they are safe to run
// concurrently WITH readers. Snapshot() acquires the publication mutex
// only for the duration of one pointer copy, and no mutating call holds
// that mutex across I/O or compute, so a snapshot never waits on an
// in-flight repair.
//
// Determinism: every published epoch inherits the byte-identical
// contract of the underlying executors -- for a fixed input and update
// script the epoch sequence is identical for every shard/thread count,
// and 1 thread equals the sequential path.
#ifndef SEMIS_CORE_ENGINE_H_
#define SEMIS_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/incremental_stream.h"
#include "core/mis_common.h"
#include "core/pipeline_options.h"
#include "io/scratch.h"
#include "util/bit_vector.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace semis {

/// Which swap stage to run after the initial greedy scan.
enum class SwapMode {
  kNone,  // greedy / baseline only
  kOneK,  // Algorithm 2
  kTwoK,  // Algorithms 3-4
};

/// Configuration of a MisEngine (and, via the SolverOptions alias, of a
/// Solver -- the solver facade is a one-shot view of the same pipeline).
struct MisEngineOptions {
  /// Degree-sort a monolithic input before the greedy scan (paper
  /// GREEDY). When false the file is consumed as-is (paper BASELINE).
  /// Sharded input cannot be sorted in place, so there degree_sort
  /// demands the manifest's degree-sorted flag instead of sorting.
  /// Ignored by pipeline.engine == SolveEngine::kRounds: min-id rounds
  /// are record-order-free, so sorting (or demanding the sorted flag)
  /// would cost I/O without changing the output.
  bool degree_sort = true;
  /// Swap stage of the open-time solve.
  SwapMode swap = SwapMode::kTwoK;
  /// Early-stop cap on swap rounds (0 = converge; Table 8 uses 1..3).
  uint32_t max_swap_rounds = 0;
  /// Memory budget of the preprocessing sort (the paper's M).
  size_t sort_memory_budget_bytes = 64ull << 20;
  /// Merge fan-in of the preprocessing sort.
  size_t sort_fan_in = 16;
  /// Directory for intermediate artifacts -- the sorted copy and, on a
  /// monolithic open, the shard files ("" = a private temp dir owned by
  /// the engine until Close).
  std::string scratch_dir;
  /// Re-scan the graph after the open-time solve and fail on a
  /// non-independent or non-maximal result (paranoid mode).
  bool verify = false;
  /// Shard/thread/buffering knobs shared with every executor layer.
  EnginePipelineOptions pipeline;
};

/// Everything the open-time solve produced (identical to what the
/// one-shot Solver returns -- the solver IS this pipeline).
struct SolveResult {
  /// The independent set (bit per vertex id).
  BitVector set;
  /// Number of vertices in the set.
  uint64_t set_size = 0;
  /// Stage results: exactly one of greedy/rounds ran (per
  /// pipeline.engine); swap untouched when SwapMode::kNone. The rounds
  /// result's round_stats carries the per-round winner/frontier counters
  /// `semis_cli solve --stats` reports.
  AlgoResult greedy;
  AlgoResult rounds;
  AlgoResult swap;
  /// Seconds spent in the preprocessing sort (0 when skipped).
  double sort_seconds = 0.0;
  /// Seconds spent splitting the file into shards (0 when not sharding).
  double shard_seconds = 0.0;
  /// Aggregated I/O over all stages (sort + shard + greedy + swaps).
  IoStats io;
  /// Peak logical memory over all stages, including the preprocessing
  /// sort's run buffer and merge cursors.
  size_t peak_memory_bytes = 0;
  /// Total wall-clock seconds.
  double seconds = 0.0;
  /// Whether the records actually consumed were degree-sorted: the
  /// manifest flag on sharded input, the (post-sort) header flag on
  /// monolithic input. False means Algorithm 1 ran in BASELINE order --
  /// on a manifest this can happen silently after a compaction cleared
  /// the flag, so callers surface it (semis_cli warns on stderr).
  bool degree_sorted = false;
};

/// Per-epoch deltas: what happened between the previous publication and
/// the one that created this epoch. Epoch 1 (the open-time solve) has
/// all-zero deltas; its cost lives in MisEngine::open_result().
struct EpochStats {
  /// ApplyBatch() calls and the updates they carried.
  uint64_t batches = 0;
  uint64_t updates = 0;
  /// Repair() passes folded into this epoch and the vertices they
  /// re-added.
  uint64_t repair_passes = 0;
  uint64_t repair_added = 0;
  /// Wall-clock seconds spent applying and repairing for this epoch.
  double apply_seconds = 0.0;
  double repair_seconds = 0.0;
};

/// One published epoch: an immutable view of the solution at a
/// publication point. Refcounted -- hold the shared_ptr as long as the
/// view is needed; the epoch's memory retires when the last holder (or
/// the engine, on the next Publish) drops it.
class EpochSnapshot {
 public:
  EpochSnapshot(uint64_t epoch, BitVector set, uint64_t set_size,
                EpochStats stats)
      : epoch_(epoch),
        set_(std::move(set)),
        set_size_(set_size),
        stats_(stats) {}

  /// Publication counter: 1 for the open-time solve, +1 per Publish().
  uint64_t epoch() const { return epoch_; }
  /// The independent set of this epoch (bit per vertex id).
  const BitVector& set() const { return set_; }
  /// |set|.
  uint64_t set_size() const { return set_size_; }
  /// Membership query (false for out-of-range ids).
  bool Contains(VertexId v) const {
    return v < set_.size() && set_.Test(v);
  }
  /// What this epoch absorbed since the previous one.
  const EpochStats& stats() const { return stats_; }

 private:
  uint64_t epoch_;
  BitVector set_;
  uint64_t set_size_;
  EpochStats stats_;
};

using EpochSnapshotRef = std::shared_ptr<const EpochSnapshot>;

/// The resident engine. See the file comment for the lifecycle and the
/// threading contract. Not copyable or movable (readers may hold the
/// publication mutex's address across the object's lifetime).
class MisEngine {
 public:
  explicit MisEngine(MisEngineOptions options)
      : options_(std::move(options)) {}

  MisEngine(const MisEngine&) = delete;
  MisEngine& operator=(const MisEngine&) = delete;

  /// Opens `path` -- a SADJS manifest or an epoch-journaled store root
  /// (both detected by magic) or a SADJ monolithic file -- runs the
  /// solve pipeline on it, and publishes the
  /// result as epoch 1. Monolithic input is degree-sorted (when
  /// configured and needed) and, with pipeline.num_shards > 1, split
  /// into shards first; both intermediates live in the engine's scratch
  /// directory until Close.
  Status Open(const std::string& path) EXCLUDES(publish_mu_);

  /// As Open but the input must be a SADJS manifest: any other file
  /// fails with the manifest reader's diagnosis instead of falling
  /// through to the monolithic path. This is the Solver::SolveShardedFile
  /// contract (and the `update` subcommand's entry point).
  Status OpenSharded(const std::string& manifest_path)
      EXCLUDES(publish_mu_);

  /// Binds to a SADJS manifest WITHOUT solving: `initial_set` (an
  /// independent set over the manifest's base graph, e.g. a previous
  /// session's output) becomes epoch 1 as-is. open_result() holds only
  /// the adopted set.
  Status OpenSharded(const std::string& manifest_path,
                     const BitVector& initial_set) EXCLUDES(publish_mu_);

  /// True between a successful Open and Close.
  bool is_open() const { return open_; }

  /// The current epoch. Never blocks on mutation; never returns a
  /// partially-published epoch. Null only before Open / after Close.
  EpochSnapshotRef Snapshot() const EXCLUDES(publish_mu_);

  /// Eagerly materializes the mutation arm: binds ShardedStreamingMis to
  /// the manifest (sharding a sequential monolithic open first) and
  /// replays any existing SDELTA overlay on top of the current epoch's
  /// set. Called implicitly by the first mutating call; explicit use
  /// fronts the bind cost and surfaces replayed overlay state early.
  /// NOTE: a replayed overlay advances only the private successor state;
  /// the published epoch still shows the base-graph set until the next
  /// Publish().
  Status Prepare() EXCLUDES(publish_mu_);

  /// Applies one batch of edge updates to the private successor state
  /// (eager eviction + durable delta logging, ShardedStreamingMis
  /// semantics). Published epochs are unaffected until Publish().
  Status ApplyBatch(const std::vector<EdgeUpdate>& updates)
      EXCLUDES(publish_mu_);

  /// Restores maximality of the successor state with one merged pass
  /// over base shards + delta. Safe to run while readers hold snapshots.
  Status Repair() EXCLUDES(publish_mu_);

  /// Folds saturated (or, with `force`, all pending) shard deltas into
  /// the base files. Storage-only: the successor's effective graph and
  /// set are unchanged, so no new epoch is implied.
  Status Compact(bool force = false) EXCLUDES(publish_mu_);

  /// Restores global (degree, id) order after compactions cleared the
  /// manifest's degree-sorted flag: folds any pending deltas, rewrites
  /// the base shards fully sorted and publishes them through the same
  /// atomic epoch commit as Compact. Storage-only: the effective graph
  /// and the successor's set are unchanged. A no-op when the base is
  /// already sorted.
  Status Resort() EXCLUDES(publish_mu_);

  /// Freezes the successor state into a new epoch and atomically swaps
  /// it in as the current snapshot; the previous epoch retires when its
  /// last reader drops. Per-epoch stats carry the apply/repair deltas
  /// since the previous publication. A no-op (returning the current
  /// epoch) when nothing was mutated since the last publication.
  EpochSnapshotRef Publish() EXCLUDES(publish_mu_);

  /// Updates applied to the successor state since the last Publish() --
  /// how stale the served epoch is.
  uint64_t staleness() const { return pending_updates_; }

  /// True when a failed mutation commit latched the engine read-only:
  /// the store (or the private successor state) is suspect, so every
  /// later mutating call returns FailedPrecondition and Publish()
  /// returns the current epoch unchanged, while Snapshot() keeps
  /// serving the last published epoch. Sticky until Close(). Part of
  /// the mutator surface (call from the externally-serialized mutating
  /// thread, like the mutating calls themselves).
  bool read_only() const { return !degraded_.ok(); }

  /// The storage failure that tripped read-only mode (OK when healthy).
  const Status& degraded_reason() const { return degraded_; }

  /// What the open-time solve produced (Solver's result object).
  const SolveResult& open_result() const { return open_result_; }

  /// Cumulative streaming-session stats, or null before the mutation arm
  /// is materialized (see Prepare).
  const StreamingMisStats* streaming_stats() const {
    return mutant_ == nullptr ? nullptr : &mutant_->stats();
  }

  /// The SADJS manifest backing the mutation arm: the opened manifest,
  /// the engine-sharded copy for monolithic opens, or "" while a
  /// sequential monolithic open has not been sharded yet.
  const std::string& manifest_path() const { return manifest_path_; }

  /// Drops the mutation arm and the current epoch (outstanding snapshot
  /// references stay valid) and releases the scratch directory. The
  /// engine can be reopened.
  Status Close() EXCLUDES(publish_mu_);

 private:
  // Lazily creates the intermediate-artifact directory.
  Status IntermediateDir(std::string* dir);
  // Prepare() minus the degradation wrapping.
  Status PrepareInner() EXCLUDES(publish_mu_);
  // Latches read-only mode when `s` is a storage failure (IOError or
  // Corruption: the store and/or the successor state are suspect).
  // InvalidArgument does NOT trip the latch -- a malformed request
  // leaves the store untouched. Returns `s` for propagation.
  Status NoteMutationResult(Status s);
  // FailedPrecondition naming `verb` when the engine is read-only.
  Status GuardMutable(const char* verb) const;
  // The deduplicated shard pipeline shared by every sharded open: the
  // configured engine (shard-pipelined greedy or min-id rounds) seeded
  // into the parallel swap executor. `require_degree_sorted` gates the
  // manifest flag with the same error text as the monolithic path.
  Status RunShardPipeline(const std::string& manifest_path,
                          bool require_degree_sorted, SolveResult* res);
  // The monolithic pipeline: optional sort, then either the shard
  // pipeline (pipeline.num_shards > 1) or the sequential greedy + swap.
  Status OpenMonolithic(const std::string& adjacency_path);
  // Shared tail of every sharded open (flag check, pipeline, verify).
  Status OpenShardedInternal(const std::string& manifest_path,
                             SolveResult* res);
  // Swaps `snapshot` in as the current epoch.
  void Install(EpochSnapshotRef snapshot) EXCLUDES(publish_mu_);
  // Stats of the successor session at the last publication, for
  // computing per-epoch deltas.
  struct PublishedMark {
    uint64_t repair_passes = 0;
    uint64_t repair_added = 0;
    double apply_seconds = 0.0;
    double repair_seconds = 0.0;
  };

  MisEngineOptions options_;
  bool open_ = false;
  // Intermediates (sorted copy, engine-side shards) live here so they
  // outlive Open when the engine stays resident.
  ScratchDir scratch_;
  std::string inter_dir_;
  // The consumed monolithic file (input or sorted copy); "" on a
  // manifest open.
  std::string work_path_;
  std::string manifest_path_;
  SolveResult open_result_;
  uint64_t num_vertices_ = 0;
  // The mutation arm, materialized on first use.
  std::unique_ptr<ShardedStreamingMis> mutant_;
  // Pending (unpublished) mutation bookkeeping.
  uint64_t pending_batches_ = 0;
  uint64_t pending_updates_ = 0;
  bool dirty_ = false;
  PublishedMark mark_;
  uint64_t epoch_ = 0;
  // OK while healthy; the tripping failure once read-only (sticky).
  Status degraded_;
  // Guards only `current_`: held for the pointer copy in Snapshot() and
  // the pointer swap in Install(), never across I/O or compute. That is
  // the whole RCU rule, and the EXCLUDES(publish_mu_) contract on every
  // mutating call above makes the compiler enforce it: a mutator that
  // tried to do its work while holding the publication mutex would fail
  // the thread-safety analysis.
  mutable Mutex publish_mu_;
  EpochSnapshotRef current_ GUARDED_BY(publish_mu_);
};

}  // namespace semis

#endif  // SEMIS_CORE_ENGINE_H_
