#include "core/upper_bound.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "graph/adjacency_file.h"
#include "util/bit_vector.h"

namespace semis {

Status ComputeIndependenceUpperBoundFile(const std::string& adjacency_path,
                                         uint64_t* bound, IoStats* stats) {
  AdjacencyFileScanner scanner(stats);
  SEMIS_RETURN_IF_ERROR(scanner.Open(adjacency_path));
  BitVector visited(scanner.header().num_vertices);
  uint64_t b = 0;
  VertexRecord rec;
  bool has_next = false;
  while (true) {
    SEMIS_RETURN_IF_ERROR(scanner.Next(&rec, &has_next));
    if (!has_next) break;
    if (visited.Test(rec.id)) continue;
    visited.Set(rec.id);
    uint64_t leaves = 0;
    for (uint32_t i = 0; i < rec.degree; ++i) {
      VertexId u = rec.neighbors[i];
      if (!visited.Test(u)) {
        visited.Set(u);
        leaves++;
      }
    }
    b += std::max<uint64_t>(leaves, 1);
  }
  *bound = b;
  return Status::OK();
}

uint64_t ComputeIndependenceUpperBound(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return graph.Degree(a) < graph.Degree(b);
  });
  BitVector visited(n);
  uint64_t bound = 0;
  for (VertexId v : order) {
    if (visited.Test(v)) continue;
    visited.Set(v);
    uint64_t leaves = 0;
    for (VertexId u : graph.Neighbors(v)) {
      if (!visited.Test(u)) {
        visited.Set(u);
        leaves++;
      }
    }
    bound += std::max<uint64_t>(leaves, 1);
  }
  return bound;
}

}  // namespace semis
