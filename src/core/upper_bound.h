// Copyright (c) the semis authors.
// Algorithm 5 (appendix): a one-scan upper bound on the independence
// number. The scan partitions V into stars (an unvisited center plus its
// unvisited neighbors); a star with N >= 1 leaves contributes N to the
// bound, an isolated center contributes 1. Since any independent set can
// take at most max(N, 1) vertices from each star of the partition, the sum
// bounds alpha(G) from above. The paper evaluates every "performance
// ratio" against this bound.
#ifndef SEMIS_CORE_UPPER_BOUND_H_
#define SEMIS_CORE_UPPER_BOUND_H_

#include <string>

#include "graph/graph.h"
#include "io/io_stats.h"
#include "util/status.h"

namespace semis {

/// Computes the Algorithm 5 bound with one sequential scan of the file.
/// Like the paper, feed a degree-sorted file for the tightest bound.
Status ComputeIndependenceUpperBoundFile(const std::string& adjacency_path,
                                         uint64_t* bound,
                                         IoStats* stats = nullptr);

/// In-memory variant (scans vertices in ascending-degree order, matching
/// what Algorithm 5 sees after the paper's preprocessing).
uint64_t ComputeIndependenceUpperBound(const Graph& graph);

}  // namespace semis

#endif  // SEMIS_CORE_UPPER_BOUND_H_
