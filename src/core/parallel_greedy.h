// Copyright (c) the semis authors.
// Sharded executor for Algorithm 1 (GREEDY) over a SADJS file
// (graph/sharded_adjacency_file.h). The greedy scan is inherently
// sequential -- each record's outcome depends on every earlier record --
// so the parallelism is a pipeline, not a fan-out: worker threads
// prefetch and decode shards ahead of the scan while the calling thread
// commits records strictly in global manifest order.
//
// Concurrency contract: no mutex of its own -- all shared state is
// inside ManifestOrderedShardCursor's annotated block ring; the commit
// loop runs single-threaded on the calling thread. See
// docs/architecture.md ("Static analysis") for the conventions.
//
// Determinism contract: the commit order equals the manifest order for
// every shard/thread count, so the final state array (and therefore the
// independent set) is byte-identical to sequential RunGreedy on the
// equivalent monolithic file. num_threads <= 1 runs the plain sequential
// scan over the shards (no pool, no buffering): it IS the existing
// sequential path, merely reading sharded input.
#ifndef SEMIS_CORE_PARALLEL_GREEDY_H_
#define SEMIS_CORE_PARALLEL_GREEDY_H_

#include <string>
#include <vector>

#include "core/greedy.h"
#include "core/mis_common.h"
#include "core/pipeline_options.h"
#include "util/status.h"

namespace semis {

/// Options for the sharded greedy executor.
struct ParallelGreedyOptions {
  /// Options shared with the sequential scan (require_degree_sorted is
  /// enforced against the SADJS manifest flags, with the same error as
  /// the monolithic path).
  GreedyOptions greedy;
  /// Shared pipeline knobs. This executor reads `num_threads` (decoder
  /// threads prefetching shards), `decode_block_bytes`, and
  /// `max_buffered_bytes`; the manifest fixes the shard count, so
  /// `num_shards` is ignored.
  EnginePipelineOptions pipeline;
};

/// Runs Algorithm 1 over the sharded adjacency file rooted at
/// `manifest_path`. On return `result->in_set` holds a maximal
/// independent set identical to sequential RunGreedy on the equivalent
/// monolithic file.
Status RunParallelGreedy(const std::string& manifest_path,
                         const ParallelGreedyOptions& options,
                         AlgoResult* result);

/// As RunParallelGreedy, but additionally exposes the final state array
/// (kI / kN per vertex) so the solver can hand it straight to the
/// parallel swap executor without re-deriving it from the bit vector.
Status RunParallelGreedyWithStates(const std::string& manifest_path,
                                   const ParallelGreedyOptions& options,
                                   AlgoResult* result,
                                   std::vector<VState>* states);

}  // namespace semis

#endif  // SEMIS_CORE_PARALLEL_GREEDY_H_
