// Copyright (c) the semis authors.
// Algorithm 2: the ONE-K-SWAP algorithm. Starting from a maximal
// independent set, it repeatedly performs 1<->k swaps (k >= 2): one IS
// vertex leaves, two or more non-IS vertices enter -- driven purely by
// sequential scans of the adjacency file and O(|V|) state in memory.
//
// Per round (three passes, matching the paper's "three iterations"):
//   pre-swap  (file scan)  : detect 1-2 swap skeletons, resolve swap
//                            conflicts by scan order (first candidate
//                            wins; later candidates that see a P neighbor
//                            become C), and let additional vertices join a
//                            swap whose IS vertex is already R;
//   swap      (state pass) : P -> I, R -> N;
//   post-swap (file scan)  : 0<->1 swaps for N vertices whose whole
//                            neighborhood is C/N, then re-label A vertices
//                            (exactly one IS neighbor) for the next round.
//
// Skeleton detection uses the paper's Section 5.4 trick: ISN slots of IS
// vertices are unused, so they store |ISN^-1(w)| -- the number of A
// vertices currently pointing at w. A vertex u with x conflicting
// neighbors has a non-adjacent swap partner iff |ISN^-1(w)| >= x + 2,
// which makes the skeleton test O(deg(u)) with zero extra memory.
#ifndef SEMIS_CORE_ONE_K_SWAP_H_
#define SEMIS_CORE_ONE_K_SWAP_H_

#include <functional>
#include <string>
#include <vector>

#include "core/mis_common.h"
#include "util/bit_vector.h"
#include "util/status.h"

namespace semis {

/// Callback invoked after each phase of a swap algorithm with the full
/// state array. Phases: "init", "pre-swap", "swap", "post-swap",
/// "completion". Intended for tests (state-machine legality checks) and
/// debugging; adds no cost when empty.
using PhaseObserver = std::function<void(
    const char* phase, uint64_t round, const std::vector<VState>& states)>;

/// Options for ONE-K-SWAP.
struct OneKSwapOptions {
  /// Stop after this many rounds even if more swaps remain (the paper's
  /// early-stop experiment, Table 8). 0 = run until convergence.
  uint32_t max_rounds = 0;
  /// Use the ISN^-1 counting trick (paper Section 5.4). Turning it off
  /// switches to an explicit inverse-ISN index: same results, extra
  /// memory, slower -- kept as an ablation.
  bool use_counting_trick = true;
  /// Run a final completion scan that adds any vertex with no IS neighbor
  /// (guarantees maximality even in the corner case where a vertex's last
  /// IS neighbor left while all its other neighbors were A; see the
  /// implementation note in one_k_swap.cc).
  bool final_maximality_pass = true;
  /// Optional per-phase state snapshot hook (tests/debugging).
  PhaseObserver observer;
};

/// Runs ONE-K-SWAP on the adjacency file at `path`, starting from
/// `initial_set` (must be an independent set over the same graph; pass the
/// greedy result). File order is free; the paper uses the degree-sorted
/// file and so do the benches.
Status RunOneKSwap(const std::string& path, const BitVector& initial_set,
                   const OneKSwapOptions& options, AlgoResult* result);

}  // namespace semis

#endif  // SEMIS_CORE_ONE_K_SWAP_H_
