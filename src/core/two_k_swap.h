// Copyright (c) the semis authors.
// Algorithms 3-4: the TWO-K-SWAP algorithm. Extends one-k-swap with
// 2<->k swaps (k >= 3): two IS vertices w1, w2 leave, three or more non-IS
// vertices enter. The A state now admits one OR two IS neighbors; ISN(u)
// is a set of at most two vertices.
//
// Swap candidates (Definition 2) and 2-3 swap skeletons (Definition 3) are
// discovered incrementally in scan order, so that every pairwise
// non-adjacency test only ever consults the adjacency list currently in
// hand (this is what makes the search possible without random disk
// access):
//   * per IS-pair (w1,w2), SC(w1,w2) accumulates "anchor" vertices
//     (ISN = {w1,w2}) and candidate pairs (anchor, partner);
//   * per IS vertex w, a list of "single" A vertices (ISN = {w}) lets a
//     later anchor pick a partner with ISN inside its pair;
//   * when a third mutually non-adjacent vertex arrives, the 2-3 skeleton
//     fires: three vertices become P, w1 and w2 become R, and SC(w1,w2)
//     is freed (Algorithm 4 line 8).
// All SC structures live only within one pre-swap scan; their peak vertex
// count is reported (Figure 10 plots it at about 0.13 |V|, and Lemma 6
// bounds it by |V| - e^alpha).
//
// One-k swaps (Definition 1) remain available inside the same round via
// the ISN^-1 counting trick, restricted to single-ISN vertices.
#ifndef SEMIS_CORE_TWO_K_SWAP_H_
#define SEMIS_CORE_TWO_K_SWAP_H_

#include <string>

#include "core/mis_common.h"
#include "core/one_k_swap.h"  // PhaseObserver
#include "util/bit_vector.h"
#include "util/status.h"

namespace semis {

/// Options for TWO-K-SWAP.
struct TwoKSwapOptions {
  /// Stop after this many rounds (0 = until convergence). Table 8 style
  /// early stop.
  uint32_t max_rounds = 0;
  /// Final completion scan guaranteeing maximality (see OneKSwapOptions).
  bool final_maximality_pass = true;
  /// Safety valve: maximum pairs stored per SC bucket. The paper bounds
  /// |SC(w1,w2)| by deg(w1)+deg(w2); this cap (default 64) keeps the
  /// pre-swap scan linear even on adversarial inputs, at the cost of
  /// possibly missing some 2-3 skeletons in one round (they are found in
  /// later rounds).
  uint32_t max_pairs_per_bucket = 64;
  /// Stall guard: stop after this many consecutive rounds in which swaps
  /// fired but |IS| did not grow (denied promotions can make a round
  /// net-neutral; a run of such rounds means the remaining skeletons keep
  /// losing the same races). 0 disables the guard.
  uint32_t stall_round_limit = 3;
  /// Optional per-phase state snapshot hook (tests/debugging).
  PhaseObserver observer;
};

/// Runs TWO-K-SWAP on the adjacency file at `path`, starting from
/// `initial_set` (an independent set over the same graph, e.g. the greedy
/// result).
Status RunTwoKSwap(const std::string& path, const BitVector& initial_set,
                   const TwoKSwapOptions& options, AlgoResult* result);

}  // namespace semis

#endif  // SEMIS_CORE_TWO_K_SWAP_H_
