#include "gen/datasets.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "gen/plrg.h"
#include "graph/adjacency_file.h"
#include "graph/degree_sort.h"
#include "graph/graph_io.h"
#include "util/logging.h"

namespace semis {

const std::vector<DatasetSpec>& PaperDatasets() {
  // Scales are chosen so the whole Table 5/6 suite (six algorithms x ten
  // datasets) completes in a few minutes on one core; relative dataset
  // ordering by size is preserved.
  static const std::vector<DatasetSpec> kDatasets = {
      {"astroph", 37000, 396000, 21.10, "3.3MB", 1.0, 101, false},
      {"dblp", 425000, 1050000, 4.92, "11.2MB", 1.0, 102, false},
      {"youtube", 1160000, 2990000, 5.16, "31.6MB", 0.40, 103, false},
      {"patent", 3770000, 16520000, 8.76, "154MB", 0.12, 104, false},
      {"blog", 4040000, 34680000, 17.18, "295MB", 0.06, 105, false},
      {"citeseerx", 6540000, 15010000, 4.60, "164MB", 0.10, 106, false},
      {"uniport", 6970000, 15980000, 4.59, "175MB", 0.10, 107, false},
      {"facebook", 59220000, 151740000, 5.12, "1.57GB", 0.016, 108, true},
      {"twitter", 61580000, 2405000000ull, 78.12, "9.41GB", 0.0015, 109,
       true},
      {"clueweb12", 978400000, 42570000000ull, 87.03, "169GB", 0.00018, 110,
       true},
  };
  return kDatasets;
}

const DatasetSpec* FindDataset(const std::string& name) {
  for (const DatasetSpec& d : PaperDatasets()) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

double GlobalScaleFromEnv() {
  const char* s = std::getenv("SEMIS_SCALE");
  if (s == nullptr) return 1.0;
  double v = std::atof(s);
  if (v < 0.01) v = 0.01;
  if (v > 1000) v = 1000;
  return v;
}

std::string DefaultDatasetCacheDir() {
  const char* env = std::getenv("SEMIS_DATA_DIR");
  // Bench-only dataset cache: picking and creating the cache directory is
  // not on the durability path, so it stays outside the FileSystem seam.
  std::string dir = env != nullptr
                        ? std::string(env)
                        // semis-lint: allow(raw-io)
                        : (std::filesystem::temp_directory_path() /
                           "semis-bench-cache")
                              .string();
  std::error_code ec;
  // semis-lint: allow(raw-io)
  std::filesystem::create_directories(dir, ec);
  return dir;
}

Status MaterializeDataset(const DatasetSpec& spec, double scale,
                          const std::string& cache_dir, DatasetFiles* out,
                          IoStats* stats) {
  const double effective = spec.default_scale * scale;
  uint64_t target_vertices = static_cast<uint64_t>(
      static_cast<double>(spec.paper_vertices) * effective);
  if (target_vertices < 100) target_vertices = 100;

  char tag[128];
  std::snprintf(tag, sizeof(tag), "%s-v%llu-s%llu", spec.name.c_str(),
                static_cast<unsigned long long>(target_vertices),
                static_cast<unsigned long long>(spec.seed));
  std::string base = cache_dir + "/" + tag;
  DatasetFiles files;
  files.adjacency_path = base + ".adj";
  files.sorted_path = base + ".sadj";

  // Reuse cached files when both open cleanly with matching headers.
  auto probe = [&](const std::string& path, AdjacencyFileHeader* h) {
    AdjacencyFileScanner scanner(nullptr);
    Status s = scanner.Open(path);
    if (s.ok()) *h = scanner.header();
    return s;
  };
  AdjacencyFileHeader ha, hs;
  if (probe(files.adjacency_path, &ha).ok() &&
      probe(files.sorted_path, &hs).ok() &&
      ha.num_vertices == hs.num_vertices &&
      ha.num_directed_edges == hs.num_directed_edges) {
    files.num_vertices = ha.num_vertices;
    files.num_edges = ha.num_directed_edges / 2;
    files.avg_degree = ha.num_vertices == 0
                           ? 0.0
                           : static_cast<double>(ha.num_directed_edges) /
                                 static_cast<double>(ha.num_vertices);
    *out = files;
    return Status::OK();
  }

  Logf(LogLevel::kInfo, "materializing dataset %s (%llu vertices target)",
       spec.name.c_str(), static_cast<unsigned long long>(target_vertices));
  PlrgSpec plrg =
      PlrgSpec::ForVerticesAndAvgDegree(target_vertices, spec.paper_avg_degree);
  Graph g = GeneratePlrg(plrg, spec.seed);
  SEMIS_RETURN_IF_ERROR(
      WriteGraphToAdjacencyFile(g, files.adjacency_path, stats));
  DegreeSortOptions sort_opts;
  sort_opts.stats = stats;
  SEMIS_RETURN_IF_ERROR(BuildDegreeSortedAdjacencyFile(
      files.adjacency_path, files.sorted_path, sort_opts));
  files.num_vertices = g.NumVertices();
  files.num_edges = g.NumEdges();
  files.avg_degree = g.AverageDegree();
  *out = files;
  return Status::OK();
}

}  // namespace semis
