// Copyright (c) the semis authors.
// Deterministic graph generators: classic families for tests and property
// sweeps, plus the adversarial cascade-swap family from Figure 5 of the
// paper (worst case for the number of one-k-swap rounds).
#ifndef SEMIS_GEN_GENERATORS_H_
#define SEMIS_GEN_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"

namespace semis {

/// G(n, m): `m` distinct uniform edges on `n` vertices (self-loops
/// resampled; if m exceeds the number of possible edges it is clamped).
Graph GenerateErdosRenyi(VertexId n, uint64_t m, uint64_t seed);

/// G(n, p): each of the n(n-1)/2 edges present independently with
/// probability p. Intended for small n (tests).
Graph GenerateGnp(VertexId n, double p, uint64_t seed);

/// Star: vertex 0 adjacent to 1..n-1.
Graph GenerateStar(VertexId n);

/// Simple path 0-1-...-n-1.
Graph GeneratePath(VertexId n);

/// Cycle 0-1-...-n-1-0.
Graph GenerateCycle(VertexId n);

/// Complete graph K_n.
Graph GenerateComplete(VertexId n);

/// Complete bipartite K_{a,b}: vertices [0,a) vs [a,a+b).
Graph GenerateCompleteBipartite(VertexId a, VertexId b);

/// Disjoint union of `k` triangles (3k vertices); alpha = k.
Graph GenerateTriangles(VertexId k);

/// Cascade-swap graph (paper Figure 5 generalized): `k` triples
/// (a_i; b_i, c_i) with edges a_i-b_i, a_i-c_i and b_i-a_{i+1}. With the
/// initial independent set {a_0..a_{k-1}}, exactly one 1-2 swap is enabled
/// per round, so one-k-swap needs k rounds -- the paper's worst case.
/// Vertex layout: a_i = 3i, b_i = 3i+1, c_i = 3i+2.
Graph GenerateCascadeSwap(VertexId k);

/// Caterpillar: path of length `spine` with `legs` pendant vertices per
/// spine vertex. Greedy-friendly family with known alpha.
Graph GenerateCaterpillar(VertexId spine, VertexId legs);

}  // namespace semis

#endif  // SEMIS_GEN_GENERATORS_H_
