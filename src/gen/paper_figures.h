// Copyright (c) the semis authors.
// Literal encodings of the worked examples in the paper (Figures 1, 2 and
// 7). Unit tests assert the exact behaviour the paper narrates on these
// graphs, including scan order, which the examples depend on.
#ifndef SEMIS_GEN_PAPER_FIGURES_H_
#define SEMIS_GEN_PAPER_FIGURES_H_

#include <vector>

#include "graph/graph.h"

namespace semis {

/// A worked example: a graph plus the scan (file) order its narrative
/// assumes and the paper's initial independent set. Vertex ids are the
/// paper's labels minus one (v1 -> 0).
struct PaperExample {
  Graph graph;
  /// Order in which vertex records appear in the adjacency file.
  std::vector<VertexId> scan_order;
  /// The independent set the example starts from.
  std::vector<VertexId> initial_set;
};

/// Figure 1: {v1, v2} is maximal, {v2, v3, v4, v5} is maximum. Star with
/// center v1 and leaves v3, v4, v5; v2 isolated.
PaperExample Figure1Example();

/// Figure 2 / Example 1: two 1-2 swap skeletons (v2,v3,v1) and (v5,v6,v4)
/// that conflict through the edge v3-v6; only one may fire. Expected
/// result: {v2, v3, v4} (with the narrated scan order).
PaperExample Figure2Example();

/// Figure 7 / Example 3: the two-k-swap example. Initial set {v1,v2,v3};
/// the 2-3 skeleton (v4,v5,v6,v2,v3) fires, v8 joins via the all-R rule,
/// v7 conflicts; a 2<->4 swap yields {v1, v4, v5, v6, v8}.
PaperExample Figure7Example();

/// Figure 5 narrative: 9-vertex cascade (k = 3 triples) where the swaps
/// must cascade v7->{v8,v9}, then v4->{v5,v6}, then v1->{v2,v3}.
PaperExample Figure5Example();

}  // namespace semis

#endif  // SEMIS_GEN_PAPER_FIGURES_H_
