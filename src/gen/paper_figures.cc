#include "gen/paper_figures.h"

#include "gen/generators.h"

namespace semis {

namespace {
// The paper labels vertices v1, v2, ...; ids here are zero-based.
constexpr VertexId V(int paper_label) {
  return static_cast<VertexId>(paper_label - 1);
}
}  // namespace

PaperExample Figure1Example() {
  PaperExample ex;
  ex.graph = Graph::FromEdges(5, {{V(1), V(3)}, {V(1), V(4)}, {V(1), V(5)}});
  ex.scan_order = {V(1), V(2), V(3), V(4), V(5)};
  ex.initial_set = {V(1), V(2)};
  return ex;
}

PaperExample Figure2Example() {
  PaperExample ex;
  ex.graph = Graph::FromEdges(6, {{V(1), V(2)},
                                  {V(1), V(3)},
                                  {V(4), V(5)},
                                  {V(4), V(6)},
                                  {V(3), V(6)}});
  // Example 1: "the access order of vertices is: v1, v4, v2, v6, v3, v5".
  ex.scan_order = {V(1), V(4), V(2), V(6), V(3), V(5)};
  ex.initial_set = {V(1), V(4)};
  return ex;
}

PaperExample Figure7Example() {
  PaperExample ex;
  // v4, v5, v6, v8 have all their IS neighbours among {v2, v3}; v7 is
  // adjacent to v5 and v6 (it conflicts with them) and to v1 (its initial
  // IS neighbour). See the header comment for the narrative.
  ex.graph = Graph::FromEdges(8, {{V(4), V(2)},
                                  {V(4), V(3)},
                                  {V(5), V(2)},
                                  {V(6), V(3)},
                                  {V(8), V(2)},
                                  {V(8), V(3)},
                                  {V(7), V(5)},
                                  {V(7), V(6)},
                                  {V(7), V(1)}});
  ex.scan_order = {V(1), V(2), V(3), V(4), V(5), V(6), V(8), V(7)};
  ex.initial_set = {V(1), V(2), V(3)};
  return ex;
}

PaperExample Figure5Example() {
  PaperExample ex;
  ex.graph = GenerateCascadeSwap(3);
  // GenerateCascadeSwap lays out a_i = 3i, b_i = 3i+1, c_i = 3i+2; the
  // paper's narrative swaps the LAST triple first, which matches the
  // cascade orientation b_i - a_{i+1}.
  ex.scan_order.clear();
  for (VertexId v = 0; v < ex.graph.NumVertices(); ++v) {
    ex.scan_order.push_back(v);
  }
  ex.initial_set = {0, 3, 6};  // the three a_i centers
  return ex;
}

}  // namespace semis
