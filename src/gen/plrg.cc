#include "gen/plrg.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/random.h"

namespace semis {

namespace {

// Expected count of vertices with degree x (continuous form).
double CountAt(double alpha, double beta, uint32_t x) {
  return std::exp(alpha - beta * std::log(static_cast<double>(x)));
}

uint32_t MaxDegreeFor(double alpha, double beta) {
  double d = std::exp(alpha / beta);
  if (d < 1.0) return 0;
  if (d > 4e9) return 4000000000u;  // clamp; never realized in practice
  return static_cast<uint32_t>(d);
}

// Total vertex count; stops early once `stop_at` is reached (the bisection
// in ForVertexCount only needs the comparison, and early alpha probes can
// have astronomically large max degrees).
uint64_t VerticesFor(double alpha, double beta,
                     uint64_t stop_at = UINT64_MAX) {
  uint64_t total = 0;
  uint32_t max_deg = MaxDegreeFor(alpha, beta);
  for (uint32_t x = 1; x <= max_deg; ++x) {
    total += static_cast<uint64_t>(std::llround(CountAt(alpha, beta, x)));
    if (total >= stop_at) return total;
  }
  return total;
}

uint64_t DegreeSumFor(double alpha, double beta) {
  uint64_t total = 0;
  uint32_t max_deg = MaxDegreeFor(alpha, beta);
  for (uint32_t x = 1; x <= max_deg; ++x) {
    total += static_cast<uint64_t>(x) *
             static_cast<uint64_t>(std::llround(CountAt(alpha, beta, x)));
  }
  return total;
}

}  // namespace

uint32_t PlrgSpec::MaxDegree() const { return MaxDegreeFor(alpha, beta); }

uint64_t PlrgSpec::TargetVertices() const { return VerticesFor(alpha, beta); }

uint64_t PlrgSpec::TargetDegreeSum() const {
  return DegreeSumFor(alpha, beta);
}

PlrgSpec PlrgSpec::ForVertexCount(uint64_t num_vertices, double beta) {
  // VerticesFor is monotone increasing in alpha: bisect.
  double lo = 0.0, hi = 45.0;
  for (int iter = 0; iter < 80; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (VerticesFor(mid, beta, num_vertices) < num_vertices) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  PlrgSpec spec;
  spec.alpha = 0.5 * (lo + hi);
  spec.beta = beta;
  return spec;
}

PlrgSpec PlrgSpec::ForVerticesAndAvgDegree(uint64_t num_vertices,
                                           double avg_degree) {
  // For fixed vertex count, the average degree decreases as beta grows.
  double lo = 1.05, hi = 4.5;
  auto avg_for = [&](double beta) {
    PlrgSpec s = ForVertexCount(num_vertices, beta);
    uint64_t v = s.TargetVertices();
    if (v == 0) return 0.0;
    return static_cast<double>(s.TargetDegreeSum()) / static_cast<double>(v);
  };
  if (avg_degree >= avg_for(lo)) return ForVertexCount(num_vertices, lo);
  if (avg_degree <= avg_for(hi)) return ForVertexCount(num_vertices, hi);
  for (int iter = 0; iter < 40; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (avg_for(mid) > avg_degree) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return ForVertexCount(num_vertices, 0.5 * (lo + hi));
}

Graph GeneratePlrg(const PlrgSpec& spec, uint64_t seed) {
  Random rng(seed);
  // Target degree for each vertex, in descending-degree construction order.
  std::vector<uint32_t> target_degree;
  uint32_t max_deg = spec.MaxDegree();
  for (uint32_t x = 1; x <= max_deg; ++x) {
    uint64_t count =
        static_cast<uint64_t>(std::llround(
            std::exp(spec.alpha - spec.beta * std::log(static_cast<double>(x)))));
    for (uint64_t c = 0; c < count; ++c) target_degree.push_back(x);
  }
  const VertexId n = static_cast<VertexId>(target_degree.size());
  // Random id assignment: permute which id receives which degree.
  std::vector<VertexId> ids(n);
  for (VertexId i = 0; i < n; ++i) ids[i] = i;
  rng.Shuffle(ids.data(), ids.size());

  // Copy multiset L: deg(v) copies of each vertex id.
  std::vector<VertexId> copies;
  uint64_t degree_sum = 0;
  for (VertexId i = 0; i < n; ++i) degree_sum += target_degree[i];
  copies.reserve(degree_sum);
  for (VertexId i = 0; i < n; ++i) {
    for (uint32_t c = 0; c < target_degree[i]; ++c) copies.push_back(ids[i]);
  }
  rng.Shuffle(copies.data(), copies.size());

  std::vector<Edge> edges;
  edges.reserve(copies.size() / 2);
  for (size_t i = 0; i + 1 < copies.size(); i += 2) {
    edges.emplace_back(copies[i], copies[i + 1]);
  }
  return Graph::FromEdges(n, std::move(edges));
}

}  // namespace semis
