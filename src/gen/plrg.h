// Copyright (c) the semis authors.
// Power-Law Random graph generator P(alpha, beta) following Section 2.2 of
// the paper (the Aiello-Chung-Lu model [3]):
//   * the number of vertices with degree x is y, where log y = alpha -
//     beta * log x  (Equation 1),
//   * a multiset L holds deg(v) copies of every vertex v,
//   * a uniformly random matching of L defines the edges.
// Self-loops and parallel edges produced by the matching are dropped (the
// library works on simple graphs), so realized degrees are slightly below
// their targets for the heaviest vertices -- exactly the usual treatment.
#ifndef SEMIS_GEN_PLRG_H_
#define SEMIS_GEN_PLRG_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/status.h"

namespace semis {

/// Parameters of the P(alpha, beta) model.
struct PlrgSpec {
  /// Log-scale of the graph (alpha in Equation 1).
  double alpha = 10.0;
  /// Log-log slope of the degree distribution (beta in Equation 1).
  double beta = 2.0;

  /// Largest degree with at least one expected vertex: floor(e^(alpha/beta)).
  uint32_t MaxDegree() const;

  /// Number of vertices the spec will realize: sum over x of
  /// round(e^alpha / x^beta).
  uint64_t TargetVertices() const;

  /// Sum of target degrees (approximately 2|E| before simplification).
  uint64_t TargetDegreeSum() const;

  /// Solves alpha so that TargetVertices() is as close as possible to
  /// `num_vertices` for the given beta.
  static PlrgSpec ForVertexCount(uint64_t num_vertices, double beta);

  /// Solves (alpha, beta) so that the graph has about `num_vertices`
  /// vertices and average degree about `avg_degree`. Beta is found by
  /// bisection in [1.05, 4.5]; out-of-range targets clamp to the interval
  /// boundary.
  static PlrgSpec ForVerticesAndAvgDegree(uint64_t num_vertices,
                                          double avg_degree);
};

/// Samples a simple undirected graph from the spec. Vertex ids are
/// assigned by a random permutation, so id order carries no degree
/// information (this matters: BASELINE scans in id order and must not get
/// the degree-sorted order for free).
Graph GeneratePlrg(const PlrgSpec& spec, uint64_t seed);

}  // namespace semis

#endif  // SEMIS_GEN_PLRG_H_
