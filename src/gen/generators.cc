#include "gen/generators.h"

#include <set>
#include <utility>
#include <vector>

#include "util/random.h"

namespace semis {

Graph GenerateErdosRenyi(VertexId n, uint64_t m, uint64_t seed) {
  Random rng(seed);
  uint64_t possible =
      n < 2 ? 0 : static_cast<uint64_t>(n) * (n - 1) / 2;
  if (m > possible) m = possible;
  std::set<Edge> chosen;
  while (chosen.size() < m) {
    VertexId u = static_cast<VertexId>(rng.Uniform(n));
    VertexId v = static_cast<VertexId>(rng.Uniform(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    chosen.insert({u, v});
  }
  return Graph::FromEdges(n, std::vector<Edge>(chosen.begin(), chosen.end()));
}

Graph GenerateGnp(VertexId n, double p, uint64_t seed) {
  Random rng(seed);
  std::vector<Edge> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.OneIn(p)) edges.emplace_back(u, v);
    }
  }
  return Graph::FromEdges(n, std::move(edges));
}

Graph GenerateStar(VertexId n) {
  std::vector<Edge> edges;
  for (VertexId v = 1; v < n; ++v) edges.emplace_back(0, v);
  return Graph::FromEdges(n, std::move(edges));
}

Graph GeneratePath(VertexId n) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return Graph::FromEdges(n, std::move(edges));
}

Graph GenerateCycle(VertexId n) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  if (n >= 3) edges.emplace_back(n - 1, 0);
  return Graph::FromEdges(n, std::move(edges));
}

Graph GenerateComplete(VertexId n) {
  std::vector<Edge> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return Graph::FromEdges(n, std::move(edges));
}

Graph GenerateCompleteBipartite(VertexId a, VertexId b) {
  std::vector<Edge> edges;
  for (VertexId u = 0; u < a; ++u) {
    for (VertexId v = 0; v < b; ++v) edges.emplace_back(u, a + v);
  }
  return Graph::FromEdges(a + b, std::move(edges));
}

Graph GenerateTriangles(VertexId k) {
  std::vector<Edge> edges;
  for (VertexId i = 0; i < k; ++i) {
    VertexId base = 3 * i;
    edges.emplace_back(base, base + 1);
    edges.emplace_back(base, base + 2);
    edges.emplace_back(base + 1, base + 2);
  }
  return Graph::FromEdges(3 * k, std::move(edges));
}

Graph GenerateCascadeSwap(VertexId k) {
  std::vector<Edge> edges;
  for (VertexId i = 0; i < k; ++i) {
    VertexId a = 3 * i, b = 3 * i + 1, c = 3 * i + 2;
    edges.emplace_back(a, b);
    edges.emplace_back(a, c);
    if (i + 1 < k) edges.emplace_back(b, 3 * (i + 1));  // b_i - a_{i+1}
  }
  return Graph::FromEdges(3 * k, std::move(edges));
}

Graph GenerateCaterpillar(VertexId spine, VertexId legs) {
  std::vector<Edge> edges;
  VertexId next = spine;
  for (VertexId s = 0; s < spine; ++s) {
    if (s + 1 < spine) edges.emplace_back(s, s + 1);
    for (VertexId l = 0; l < legs; ++l) edges.emplace_back(s, next++);
  }
  return Graph::FromEdges(spine * (legs + 1), std::move(edges));
}

}  // namespace semis
