// Copyright (c) the semis authors.
// Synthetic stand-ins for the ten real datasets of Table 4. The paper's
// graphs come from SNAP / the WebGraph project and are unavailable
// offline, so each dataset is replaced by a deterministic power-law
// random graph with the same vertex count and average degree, scaled down
// by a per-dataset factor so the full benchmark suite runs on one core in
// minutes (see DESIGN.md, "Substitutions"). Set SEMIS_SCALE to multiply
// every scale factor (e.g. SEMIS_SCALE=10 approaches paper sizes).
#ifndef SEMIS_GEN_DATASETS_H_
#define SEMIS_GEN_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "io/io_stats.h"
#include "util/status.h"

namespace semis {

/// Description of one Table 4 dataset and its stand-in parameters.
struct DatasetSpec {
  std::string name;           // paper name, lower case
  uint64_t paper_vertices;    // |V| in Table 4
  uint64_t paper_edges;       // |E| in Table 4
  double paper_avg_degree;    // Table 4
  const char* paper_disk;     // disk size string from Table 4
  double default_scale;       // fraction of paper |V| materialized
  uint64_t seed;              // generator seed
  /// True for datasets the paper marks N/A for the in-memory baseline
  /// (too large to hold + mutate in RAM on the paper's 8 GB machine).
  bool in_memory_na;
};

/// The ten datasets of Table 4, in paper order.
const std::vector<DatasetSpec>& PaperDatasets();

/// Returns the spec by name, or nullptr.
const DatasetSpec* FindDataset(const std::string& name);

/// Paths of a materialized dataset.
struct DatasetFiles {
  std::string adjacency_path;  // id-ordered records (BASELINE input)
  std::string sorted_path;     // degree-sorted records (GREEDY input)
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;      // undirected
  double avg_degree = 0.0;
};

/// Generates (or reuses from `cache_dir`) the stand-in for `spec` at
/// `scale * spec.default_scale` of the paper vertex count, writing both
/// the id-ordered and the degree-sorted adjacency files.
Status MaterializeDataset(const DatasetSpec& spec, double scale,
                          const std::string& cache_dir, DatasetFiles* out,
                          IoStats* stats = nullptr);

/// Reads SEMIS_SCALE from the environment (default 1.0, clamped to
/// [0.01, 1000]).
double GlobalScaleFromEnv();

/// Default cache directory for bench data: $SEMIS_DATA_DIR or
/// <system temp>/semis-bench-cache. Created if missing.
std::string DefaultDatasetCacheDir();

}  // namespace semis

#endif  // SEMIS_GEN_DATASETS_H_
