#include "theory/swap_estimate.h"

#include <algorithm>
#include <cmath>

#include "theory/model_tables.h"
#include "theory/zeta.h"

namespace semis {

namespace {

// log C(n, k) via lgamma, with the continuous extension. Returns -inf
// when the combination is infeasible.
double LogChoose(double n, double k) {
  if (k < 0 || n < 0 || k > n) return -1e300;
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
         std::lgamma(n - k + 1.0);
}

// T(x, y, i) from precomputed tables. anchor_frac = i * GR_i / sum_j j GR_j
// distributes the A vertices over anchor degrees (Lemma 4: partners'
// degrees >= the anchor's).
double SwapCountTImpl(const ModelTables& tables, uint64_t x, uint64_t y,
                      uint64_t i, double anchor_frac) {
  const double gr_i = tables.GreedyAt(i);
  if (gr_i < 1.0) return 0.0;
  const double a_x = tables.AdjacentAt(x) * anchor_frac;
  const double a_y = tables.AdjacentAt(y) * anchor_frac;
  if (a_x < 1.0 || a_y < 1.0) return 0.0;
  const double pr = BinsAndBallsProbability(a_x, a_y, gr_i,
                                            static_cast<double>(i));
  return gr_i * pr;
}

}  // namespace

double CopyFractionC(const PlrgModel& model) {
  return ModelTables::Get(model).CopyFraction();
}

double SwapDegreeLimit(const PlrgModel& model) {
  // Lemma 3: ds ~ (alpha + ln zeta(beta, Delta)) / ln c0, where
  // c0 = zeta(beta-1,Delta) / (zeta(beta-1,Delta) - 2 c(alpha,beta)).
  // alpha + ln zeta(beta, Delta) = ln |V|.
  const ModelTables& tables = ModelTables::Get(model);
  const double zeta_b1 = tables.ZetaB1Total();
  const double c = tables.CopyFraction();
  const double max_degree = static_cast<double>(tables.max_degree());
  const double denom = zeta_b1 - 2.0 * c;
  if (denom <= 0) return max_degree;
  const double c0 = zeta_b1 / denom;
  if (c0 <= 1.0) return max_degree;
  const double ln_v = std::log(model.ExpectedVertices());
  return std::clamp(ln_v / std::log(c0), 2.0, max_degree);
}

double ExpectedAdjacentAtDegree(const PlrgModel& model, uint64_t i) {
  return ModelTables::Get(model).AdjacentAt(i);
}

double BinsAndBallsProbability(double m1, double m2, double n, double d) {
  // Eq. 14:
  //   Pr = C(d,1) C(n-d, m1-1) C(d-1,1) C(n-d-m1+1, m2-1)
  //        / ( C(n, m1) C(n-m1, m2) ).
  if (m1 < 1.0 || m2 < 1.0 || n < 1.0 || d < 1.0) return 0.0;
  double log_num = std::log(d) + LogChoose(n - d, m1 - 1.0) +
                   std::log(std::max(d - 1.0, 1e-12)) +
                   LogChoose(n - d - m1 + 1.0, m2 - 1.0);
  double log_den = LogChoose(n, m1) + LogChoose(n - m1, m2);
  if (log_num <= -1e250 || log_den <= -1e250) return 0.0;
  return std::clamp(std::exp(log_num - log_den), 0.0, 1.0);
}

double SwapCountT(const PlrgModel& model, uint64_t x, uint64_t y,
                  uint64_t i) {
  const ModelTables& tables = ModelTables::Get(model);
  const double weight = tables.AnchorWeight();
  if (weight <= 0) return 0.0;
  const double anchor_frac =
      static_cast<double>(i) * tables.GreedyAt(i) / weight;
  return SwapCountTImpl(tables, x, y, i, anchor_frac);
}

double OneKSwapExpectedGain(const PlrgModel& model) {
  // Proposition 5 estimates the one-round swap gain as
  //   SG = sum_{i=2}^{ds} ( T(i,i,i) + sum_{j>i} T(j,i,i)
  //                        + sum_{p>i} sum_{q>=p} T(p,q,i) ).
  // Implementation note (see DESIGN.md / EXPERIMENTS.md): the literal
  // Eq. 14/15 reading available from the paper text multiple-counts
  // anchors that attract balls of several degree classes and carries a
  // d(d-1) capacity factor, which together inflate SG by an order of
  // magnitude (SG > bound - GR, an impossibility). We therefore compute
  // the same quantity with the standard Poissonized occupancy argument:
  //   * the |A| vertices (Eq. 13) are distributed over anchor classes
  //     proportionally to i * GR_i (Lemma 4's degree ordering),
  //   * a degree-i anchor can fire a 1-2 swap iff it attracts >= 2 balls:
  //     P2(lambda_i) = 1 - e^-lambda (1 + lambda), lambda_i = balls/bins,
  //   * half of the candidate swaps are lost to swap conflicts (the
  //     Figure 2 race; factor rho = 1/2),
  // and cap the total at half the greedy-to-optimum headroom implied by
  // the paper's own Section 5 remark that "no algorithm can improve it
  // more than 2%".
  const ModelTables& tables = ModelTables::Get(model);
  const uint64_t ds = static_cast<uint64_t>(SwapDegreeLimit(model));
  const double weight = tables.AnchorWeight();
  if (weight <= 0) return 0.0;
  double total_adjacent = 0.0;
  for (uint64_t x = 2; x <= ds; ++x) total_adjacent += tables.AdjacentAt(x);
  constexpr double kConflictLoss = 0.5;  // rho
  double sg = 0.0;
  for (uint64_t i = 2; i <= ds; ++i) {
    const double bins = tables.GreedyAt(i);
    if (bins < 1.0) continue;
    const double anchor_frac = static_cast<double>(i) * bins / weight;
    const double balls = total_adjacent * anchor_frac;
    const double lambda = balls / bins;
    const double p2 = 1.0 - std::exp(-lambda) * (1.0 + lambda);
    sg += bins * p2 * kConflictLoss;
  }
  const double gr = tables.GreedyTotal();
  const double headroom = gr / 0.98 - gr;  // the "2%" remark
  return std::min(sg, 0.5 * headroom);
}

double TwoKSwapDegreeLimit(const PlrgModel& model) {
  // Lemma 6 / Eq. 17:
  //   d2k < (alpha + ln zeta(beta,Delta) + 2 ln(zeta_b1/(zeta_b1 - c)))
  //         / ln((zeta_b1 - c) / (zeta_b1 - 2c)).
  const ModelTables& tables = ModelTables::Get(model);
  const double zeta_b1 = tables.ZetaB1Total();
  const double c = tables.CopyFraction();
  const double max_degree = static_cast<double>(tables.max_degree());
  const double num = std::log(model.ExpectedVertices()) +
                     2.0 * std::log(zeta_b1 / std::max(zeta_b1 - c, 1e-12));
  const double ratio = (zeta_b1 - c) / std::max(zeta_b1 - 2.0 * c, 1e-12);
  if (ratio <= 1.0) return max_degree;
  return std::clamp(num / std::log(ratio), 2.0, max_degree);
}

double ScVertexBound(const PlrgModel& model) {
  // Lemma 6: |SC| < |V| - e^alpha (everything except the degree-1
  // vertices).
  return std::max(0.0, model.ExpectedVertices() - std::exp(model.alpha));
}

}  // namespace semis
