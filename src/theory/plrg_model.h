// Copyright (c) the semis authors.
// Continuous PLRG model calculator (Section 2.2 / Equation 2):
//   |{v : deg(v) = x}| = e^alpha / x^beta,  x = 1 .. Delta = floor(e^(alpha/beta))
//   |V| = zeta(beta, Delta) e^alpha
//   sum of degrees = zeta(beta-1, Delta) e^alpha     (~ 2|E|)
// Used by every analytical estimate (Tables 2 and 9, Figures 6 and 8).
#ifndef SEMIS_THEORY_PLRG_MODEL_H_
#define SEMIS_THEORY_PLRG_MODEL_H_

#include <cstdint>

namespace semis {

/// The (alpha, beta) model with continuous counts.
struct PlrgModel {
  double alpha = 10.0;
  double beta = 2.0;

  /// Delta = floor(e^(alpha/beta)): the maximum degree.
  uint64_t MaxDegree() const;

  /// e^alpha / x^beta: expected number of vertices of degree x.
  double CountWithDegree(double x) const;

  /// zeta(beta, Delta) e^alpha: the expected number of vertices.
  double ExpectedVertices() const;

  /// zeta(beta-1, Delta) e^alpha: the expected degree sum (2|E|).
  double ExpectedDegreeSum() const;

  /// Expected average degree.
  double ExpectedAvgDegree() const {
    double v = ExpectedVertices();
    return v <= 0 ? 0.0 : ExpectedDegreeSum() / v;
  }

  /// Solves alpha so ExpectedVertices() ~ num_vertices at the given beta.
  static PlrgModel ForVertexCount(uint64_t num_vertices, double beta);
};

}  // namespace semis

#endif  // SEMIS_THEORY_PLRG_MODEL_H_
