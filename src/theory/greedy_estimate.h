// Copyright (c) the semis authors.
// Lemma 1 / Proposition 2: the expected independent-set size of the
// semi-external GREEDY on a PLRG.
//
// Derivation implemented here (the paper's Equations 6-7 are typeset
// ambiguously in the available text; this is the probabilistic reading
// consistent with the proof sketch, and it reproduces Table 2 and
// Table 9): let S = zeta(beta-1, Delta) e^alpha be the total number of
// vertex copies and n_i = e^alpha / i^beta the number of degree-i
// vertices. The x-th degree-i vertex enters the set if all of its i
// matched copies land on vertices that are scanned AFTER it, i.e. on a
// vertex of degree > i, or on a degree-i vertex with index > x:
//   p(x) = [ i (n_i - x) + (zeta(beta-1,Delta) - zeta(beta-1,i)) e^alpha ] / S
//   GR_i = sum_{x=1..n_i} p(x)^i   (evaluated in closed form as the
//          integral of the degree-i polynomial (A - Bx)^i).
// This is a lower bound: it ignores the second-order chance of entering
// even though an earlier neighbor was scanned first but was itself
// knocked out -- matching the paper's "consistent with our proof, this is
// a lower bound" observation for Table 9.
#ifndef SEMIS_THEORY_GREEDY_ESTIMATE_H_
#define SEMIS_THEORY_GREEDY_ESTIMATE_H_

#include <cstdint>

#include "theory/plrg_model.h"

namespace semis {

/// GR_i(alpha, beta): expected number of degree-i vertices GREEDY selects
/// (Lemma 1).
double GreedyExpectedAtDegree(const PlrgModel& model, uint64_t i);

/// GR(alpha, beta) = sum_i GR_i: the expected greedy set size
/// (Proposition 2).
double GreedyExpectedSize(const PlrgModel& model);

}  // namespace semis

#endif  // SEMIS_THEORY_GREEDY_ESTIMATE_H_
