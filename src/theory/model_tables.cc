#include "theory/model_tables.h"

#include <algorithm>
#include <cmath>
#include <memory>

namespace semis {

namespace {
// Tables stop growing past this degree: n_i is far below 1 there for every
// parameterization the paper sweeps, so higher degrees contribute nothing.
constexpr uint64_t kMaxTableDegree = 4u << 20;
}  // namespace

ModelTables::ModelTables(const PlrgModel& model) : model_(model) {
  max_degree_ = std::min<uint64_t>(model.MaxDegree(), kMaxTableDegree);
  e_alpha_ = std::exp(model.alpha);
  zeta_b1_.resize(max_degree_ + 1);
  n_.resize(max_degree_ + 1);
  zeta_b1_[0] = 0.0;
  n_[0] = 0.0;
  for (uint64_t i = 1; i <= max_degree_; ++i) {
    const double di = static_cast<double>(i);
    zeta_b1_[i] = zeta_b1_[i - 1] + std::pow(di, 1.0 - model.beta);
    n_[i] = model.CountWithDegree(di);
  }

  // GR_i (Lemma 1): closed-form integral of (A - Bx)^i over x in [0, n_i];
  // see theory/greedy_estimate.h for the derivation.
  gr_.assign(max_degree_ + 1, 0.0);
  const double S = zeta_b1_.back() * e_alpha_;
  for (uint64_t i = 1; i <= max_degree_; ++i) {
    if (S <= 0 || n_[i] < 1e-12) continue;
    const double di = static_cast<double>(i);
    const double later_copies = (zeta_b1_.back() - zeta_b1_[i]) * e_alpha_;
    const double A = (di * n_[i] + later_copies) / S;
    const double B = di / S;
    const double p0 = std::clamp(A, 0.0, 1.0);
    const double p1 = std::clamp(A - B * n_[i], 0.0, 1.0);
    double gr = B <= 0 ? n_[i] * std::pow(p0, di)
                       : (std::pow(p0, di + 1.0) - std::pow(p1, di + 1.0)) /
                             (B * (di + 1.0));
    gr_[i] = std::clamp(gr, 0.0, n_[i]);
    gr_total_ += gr_[i];
    c_ += di * gr_[i];
    if (i >= 2) anchor_weight_ += di * gr_[i];
  }
  c_ /= e_alpha_;

  // |A_i| (Eq. 13): P(exactly one IS neighbor | >= one IS neighbor) among
  // the non-selected degree-i vertices.
  a_.assign(max_degree_ + 1, 0.0);
  const double zeta_b1 = zeta_b1_.back();
  if (zeta_b1 > 0) {
    const double q = c_ / zeta_b1;
    const double r = std::max(0.0, (zeta_b1 - 2.0 * c_) / zeta_b1);
    for (uint64_t i = 1; i <= max_degree_; ++i) {
      const double di = static_cast<double>(i);
      const double non_is = std::max(0.0, n_[i] - gr_[i]);
      const double denom = std::pow(q + r, di) - std::pow(r, di);
      if (denom <= 1e-300) continue;
      const double p =
          std::clamp(di * q * std::pow(r, di - 1.0) / denom, 0.0, 1.0);
      a_[i] = non_is * p;
    }
  }
}

const ModelTables& ModelTables::Get(const PlrgModel& model) {
  static thread_local std::unique_ptr<ModelTables> cache;
  if (cache == nullptr || cache->model_.alpha != model.alpha ||
      cache->model_.beta != model.beta) {
    cache = std::make_unique<ModelTables>(model);
  }
  return *cache;
}

}  // namespace semis
