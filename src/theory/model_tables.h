// Copyright (c) the semis authors.
// Shared precomputed tables for the PLRG analytical machinery. The
// formulas of Lemma 1 / Propositions 2 and 5 repeatedly need zeta
// prefixes, per-degree counts n_i, GR_i and |A_i|; computing them on
// demand is O(Delta^2) per query and makes the O(ds^3) Proposition 5
// summation intractable. One table per (alpha, beta) makes every query
// O(1) after an O(Delta) build.
#ifndef SEMIS_THEORY_MODEL_TABLES_H_
#define SEMIS_THEORY_MODEL_TABLES_H_

#include <cstdint>
#include <vector>

#include "theory/plrg_model.h"

namespace semis {

/// Precomputed per-degree tables for one PlrgModel. Obtain through
/// ModelTables::Get (thread-local LRU of size 1, keyed by alpha/beta --
/// the sweeps iterate one model at a time).
class ModelTables {
 public:
  /// Builds tables for `model`. Prefer Get() which caches.
  explicit ModelTables(const PlrgModel& model);

  /// Cached lookup (rebuilds only when alpha/beta change).
  static const ModelTables& Get(const PlrgModel& model);

  const PlrgModel& model() const { return model_; }
  uint64_t max_degree() const { return max_degree_; }
  double e_alpha() const { return e_alpha_; }

  /// zeta(beta-1, i); i in [0, max_degree].
  double ZetaB1(uint64_t i) const { return zeta_b1_[i]; }
  /// zeta(beta-1, max_degree): the total copy mass / e^alpha.
  double ZetaB1Total() const { return zeta_b1_.back(); }
  /// n_i = e^alpha / i^beta (0 for i outside [1, max_degree]).
  double CountAt(uint64_t i) const {
    return i >= 1 && i <= max_degree_ ? n_[i] : 0.0;
  }
  /// GR_i of Lemma 1 (0 outside range).
  double GreedyAt(uint64_t i) const {
    return i >= 1 && i <= max_degree_ ? gr_[i] : 0.0;
  }
  /// GR = sum_i GR_i (Proposition 2).
  double GreedyTotal() const { return gr_total_; }
  /// c(alpha, beta) = sum_i i GR_i / e^alpha (Lemma 3).
  double CopyFraction() const { return c_; }
  /// sum_j j GR_j for j >= 2: the anchor-weight normalizer of Eq. 13.
  double AnchorWeight() const { return anchor_weight_; }
  /// |A_i| of Eq. 13 (0 outside range).
  double AdjacentAt(uint64_t i) const {
    return i >= 1 && i <= max_degree_ ? a_[i] : 0.0;
  }

 private:
  PlrgModel model_;
  uint64_t max_degree_;
  double e_alpha_;
  std::vector<double> zeta_b1_;  // size max_degree_+1
  std::vector<double> n_;        // size max_degree_+1
  std::vector<double> gr_;       // size max_degree_+1
  std::vector<double> a_;        // size max_degree_+1
  double gr_total_ = 0;
  double c_ = 0;
  double anchor_weight_ = 0;
};

}  // namespace semis

#endif  // SEMIS_THEORY_MODEL_TABLES_H_
