#include "theory/greedy_estimate.h"

#include "theory/model_tables.h"

namespace semis {

double GreedyExpectedAtDegree(const PlrgModel& model, uint64_t i) {
  return ModelTables::Get(model).GreedyAt(i);
}

double GreedyExpectedSize(const PlrgModel& model) {
  return ModelTables::Get(model).GreedyTotal();
}

}  // namespace semis
