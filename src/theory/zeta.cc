#include "theory/zeta.h"

#include <cmath>

namespace semis {

double GeneralizedHarmonic(double x, uint64_t y) {
  if (y == 0) return 0.0;
  constexpr uint64_t kExactLimit = 50000000;
  const uint64_t head = y < kExactLimit ? y : kExactLimit;
  double sum = 0.0;
  // Sum smallest terms first to limit floating-point error.
  for (uint64_t i = head; i >= 1; --i) {
    sum += std::pow(static_cast<double>(i), -x);
  }
  if (y > head) {
    // Integral tail: int_{head+1/2}^{y+1/2} t^-x dt.
    const double a = static_cast<double>(head) + 0.5;
    const double b = static_cast<double>(y) + 0.5;
    if (std::fabs(x - 1.0) < 1e-12) {
      sum += std::log(b / a);
    } else {
      sum += (std::pow(b, 1.0 - x) - std::pow(a, 1.0 - x)) / (1.0 - x);
    }
  }
  return sum;
}

}  // namespace semis
