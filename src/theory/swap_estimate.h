// Copyright (c) the semis authors.
// Lemmas 3-4, 6 and Proposition 5: analytical machinery for the expected
// gain of one round of ONE-K-SWAP and the memory of TWO-K-SWAP on a PLRG.
//
//   * Lemma 3 : ds, the largest degree that still contributes to 1-k
//     swaps with probability 1 - o(1/|V|); ds = O(log |V|).
//   * Eq. 13  : |A_i|, the expected number of degree-i vertices in state A
//     (exactly one IS neighbor) after greedy.
//   * Eq. 14  : the bins-and-balls probability that a fixed IS vertex
//     ("bin" of capacity d) attracts at least one type-1 and one type-2
//     ball, with balls spread over n bins.
//   * Eq. 15 / Prop. 5: T(x, y, i) and the total swap gain SG.
//   * Lemma 6 : d2k and the bound on the number of vertices SC can hold.
//
// Binomials with fractional arguments are evaluated through lgamma; all
// probabilities are clamped into [0, 1] (the paper's formulas are
// asymptotic and can exceed 1 at the small-degree boundary).
#ifndef SEMIS_THEORY_SWAP_ESTIMATE_H_
#define SEMIS_THEORY_SWAP_ESTIMATE_H_

#include <cstdint>

#include "theory/plrg_model.h"

namespace semis {

/// c(alpha, beta) = sum_i i * GR_i / e^alpha: the fraction of vertex
/// copies owned by greedy-selected vertices (appendix, Lemma 3).
double CopyFractionC(const PlrgModel& model);

/// Lemma 3: the maximal degree ds contributing to 1-k swaps whp.
double SwapDegreeLimit(const PlrgModel& model);

/// Eq. 13: expected number of degree-i vertices with state A.
double ExpectedAdjacentAtDegree(const PlrgModel& model, uint64_t i);

/// Eq. 14: bins-and-balls probability with m1 type-1 balls, m2 type-2
/// balls, n bins, bin capacity d (continuous extension via lgamma).
double BinsAndBallsProbability(double m1, double m2, double n, double d);

/// Eq. 15: T(x, y, i) -- the expected number of 1-2 swaps that replace a
/// degree-i IS vertex by partners of degrees x and y.
double SwapCountT(const PlrgModel& model, uint64_t x, uint64_t y, uint64_t i);

/// Proposition 5: SG(alpha, beta), the expected one-round gain of
/// ONE-K-SWAP over the greedy set.
double OneKSwapExpectedGain(const PlrgModel& model);

/// Lemma 6: d2k, the maximal degree of vertices that can appear in SC.
double TwoKSwapDegreeLimit(const PlrgModel& model);

/// Lemma 6: upper bound on the number of vertices held in SC sets
/// (|V| - e^alpha).
double ScVertexBound(const PlrgModel& model);

}  // namespace semis

#endif  // SEMIS_THEORY_SWAP_ESTIMATE_H_
