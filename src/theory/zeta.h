// Copyright (c) the semis authors.
// Generalized harmonic numbers: zeta(x, y) = sum_{i=1..y} i^(-x), the
// building block of every PLRG formula in the paper (Equation 2 and the
// appendix proofs).
#ifndef SEMIS_THEORY_ZETA_H_
#define SEMIS_THEORY_ZETA_H_

#include <cstdint>

namespace semis {

/// Computes zeta(x, y) = sum_{i=1}^{y} i^(-x). Exact summation for
/// moderate y; for very large y (> 5e7) the tail is approximated with the
/// Euler-Maclaurin integral term, which is accurate to ~1e-9 in the
/// parameter ranges the paper uses.
double GeneralizedHarmonic(double x, uint64_t y);

}  // namespace semis

#endif  // SEMIS_THEORY_ZETA_H_
