#include "theory/plrg_model.h"

#include <cmath>

#include "theory/zeta.h"

namespace semis {

uint64_t PlrgModel::MaxDegree() const {
  double d = std::exp(alpha / beta);
  return d < 1.0 ? 0 : static_cast<uint64_t>(d);
}

double PlrgModel::CountWithDegree(double x) const {
  return std::exp(alpha - beta * std::log(x));
}

double PlrgModel::ExpectedVertices() const {
  return GeneralizedHarmonic(beta, MaxDegree()) * std::exp(alpha);
}

double PlrgModel::ExpectedDegreeSum() const {
  return GeneralizedHarmonic(beta - 1.0, MaxDegree()) * std::exp(alpha);
}

PlrgModel PlrgModel::ForVertexCount(uint64_t num_vertices, double beta) {
  double lo = 0.0, hi = 45.0;
  for (int iter = 0; iter < 200; ++iter) {
    double mid = 0.5 * (lo + hi);
    PlrgModel m{mid, beta};
    if (m.ExpectedVertices() < static_cast<double>(num_vertices)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return PlrgModel{0.5 * (lo + hi), beta};
}

}  // namespace semis
