// Block-decode pipeline tour: open a sharded (SADJS) file with the
// manifest-ordered cursor and stream every record through the zero-copy
// view API, then read back the ring's counters -- living documentation of
// the decode layer under every parallel executor (RunParallelGreedy,
// RunParallelSwap, ShardedStreamingMis::Repair).
//
//   1. generate a graph, degree-sort it, split it into shards,
//   2. drain ManifestOrderedShardCursor via VertexRecordView,
//   3. print records/sec, blocks decoded, arena + peak buffered bytes.
//
// The interesting part is what does NOT happen: no per-record allocation
// (views are spans into pooled arenas) and no per-shard buffering (the
// ring's byte budget, not the largest shard, bounds memory).
//
// Build & run:  ./build/examples/block_decode_stats
#include <cstdio>

#include "gen/plrg.h"
#include "graph/degree_sort.h"
#include "graph/graph_io.h"
#include "graph/sharded_adjacency_file.h"
#include "io/scratch.h"
#include "util/memory_tracker.h"
#include "util/thread_pool.h"
#include "util/timer.h"

int main() {
  using namespace semis;

  ScratchDir scratch;
  Status status = ScratchDir::Create("semis-blockdemo", &scratch);
  if (!status.ok()) {
    std::fprintf(stderr, "scratch failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // Graph -> monolithic SADJ -> degree-sorted -> 8 SADJS shards.
  Graph graph = GeneratePlrg(
      PlrgSpec::ForVerticesAndAvgDegree(/*num_vertices=*/200000,
                                        /*avg_degree=*/8.0),
      /*seed=*/7);
  const std::string mono = scratch.NewFilePath("graph.adj");
  const std::string sorted = scratch.NewFilePath("sorted.sadj");
  const std::string manifest = scratch.NewFilePath("sharded.sadjs");
  status = WriteGraphToAdjacencyFile(graph, mono);
  if (status.ok()) {
    status = BuildDegreeSortedAdjacencyFile(mono, sorted, DegreeSortOptions{});
  }
  if (status.ok()) status = ShardAdjacencyFile(sorted, manifest, 8);
  if (!status.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // Drain the cursor: decoder threads fill arena-backed blocks ahead of
  // this loop; each view is a span into the current block -- read it, use
  // it, move on. Exactly what the commit scans of the executors do.
  IoStats io;
  ThreadPool pool(/*num_threads=*/4);
  ManifestOrderedShardCursor cursor(&io);
  BlockRingOptions ring;  // defaults: 256 KiB blocks, 2*(threads+1) blocks
  status = cursor.Open(manifest, &pool, ring);
  if (!status.ok()) {
    std::fprintf(stderr, "open failed: %s\n", status.ToString().c_str());
    return 1;
  }

  WallTimer timer;
  uint64_t records = 0, neighbor_sum = 0;
  VertexRecordView view;
  bool has_next = false;
  while (true) {
    status = cursor.Next(&view, &has_next);
    if (!status.ok() || !has_next) break;
    records++;
    for (VertexId nb : view) neighbor_sum += nb;  // span iteration
  }
  const double seconds = timer.ElapsedSeconds();
  Status closed = cursor.Close();
  if (!status.ok() || !closed.ok()) {
    std::fprintf(stderr, "scan failed: %s\n",
                 (!status.ok() ? status : closed).ToString().c_str());
    return 1;
  }

  std::printf("drained %llu records / %llu directed edges in %.3fs\n",
              static_cast<unsigned long long>(records),
              static_cast<unsigned long long>(
                  cursor.header().num_directed_edges),
              seconds);
  std::printf("  throughput    : %.0f records/s\n",
              seconds > 0 ? static_cast<double>(records) / seconds : 0.0);
  std::printf("  blocks decoded: %llu\n",
              static_cast<unsigned long long>(io.blocks_decoded));
  std::printf("  arena bytes   : %s (pooled, reused across blocks)\n",
              MemoryTracker::FormatBytes(io.arena_bytes).c_str());
  std::printf("  peak buffered : %s (bounded by the ring budget, "
              "not the largest shard)\n",
              MemoryTracker::FormatBytes(io.peak_buffered_bytes).c_str());
  std::printf("  bytes read    : %s over %llu files\n",
              MemoryTracker::FormatBytes(io.bytes_read).c_str(),
              static_cast<unsigned long long>(io.files_opened));
  (void)neighbor_sum;
  return 0;
}
