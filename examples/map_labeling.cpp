// Map labeling (paper Section 1): place as many non-overlapping labels as
// possible on a map. Each candidate label is a rectangle; two candidates
// conflict when their rectangles intersect. The conflict (intersection)
// graph's maximum independent set is the largest consistent labeling --
// exactly the application the paper cites [22].
//
// This example synthesizes candidate labels around random points of
// interest (4 anchor positions per POI, the classical 4-position model),
// builds the intersection graph, and labels the map with the Solver.
#include <cstdio>
#include <vector>

#include "core/solver.h"
#include "core/verify.h"
#include "util/random.h"

namespace {

struct Rect {
  double x0, y0, x1, y1;
  bool Intersects(const Rect& o) const {
    return x0 < o.x1 && o.x0 < x1 && y0 < o.y1 && o.y0 < y1;
  }
};

}  // namespace

int main() {
  using namespace semis;
  const int kPois = 4000;          // points of interest on the map
  const double kWidth = 0.022;     // label width  (map units)
  const double kHeight = 0.008;    // label height

  // 4 candidate positions per POI: label anchored at each corner.
  Random rng(7);
  std::vector<Rect> candidates;
  candidates.reserve(kPois * 4);
  for (int p = 0; p < kPois; ++p) {
    double x = rng.NextDouble();
    double y = rng.NextDouble();
    candidates.push_back({x, y, x + kWidth, y + kHeight});           // NE
    candidates.push_back({x - kWidth, y, x, y + kHeight});           // NW
    candidates.push_back({x, y - kHeight, x + kWidth, y});           // SE
    candidates.push_back({x - kWidth, y - kHeight, x, y});           // SW
  }

  // Intersection graph via a uniform grid (avoid O(n^2) pair tests).
  const int kGrid = 64;
  std::vector<std::vector<VertexId>> cells(kGrid * kGrid);
  auto cell_of = [&](double v) {
    int c = static_cast<int>(v * kGrid);
    if (c < 0) c = 0;
    if (c >= kGrid) c = kGrid - 1;
    return c;
  };
  for (VertexId i = 0; i < candidates.size(); ++i) {
    const Rect& r = candidates[i];
    for (int cx = cell_of(r.x0); cx <= cell_of(r.x1); ++cx) {
      for (int cy = cell_of(r.y0); cy <= cell_of(r.y1); ++cy) {
        cells[cx * kGrid + cy].push_back(i);
      }
    }
  }
  std::vector<Edge> conflicts;
  // A POI gets at most one label: its four candidates are mutually
  // exclusive (they only touch at the anchor, so geometry alone would
  // allow several).
  for (VertexId p = 0; p < static_cast<VertexId>(kPois); ++p) {
    for (VertexId a = 0; a < 4; ++a) {
      for (VertexId b = a + 1; b < 4; ++b) {
        conflicts.emplace_back(4 * p + a, 4 * p + b);
      }
    }
  }
  for (const auto& cell : cells) {
    for (size_t a = 0; a < cell.size(); ++a) {
      for (size_t b = a + 1; b < cell.size(); ++b) {
        if (candidates[cell[a]].Intersects(candidates[cell[b]])) {
          conflicts.emplace_back(cell[a], cell[b]);
        }
      }
    }
  }
  Graph conflict_graph = Graph::FromEdges(
      static_cast<VertexId>(candidates.size()), std::move(conflicts));
  std::printf("map: %d POIs, %zu candidate labels, %llu conflicts\n", kPois,
              candidates.size(),
              static_cast<unsigned long long>(conflict_graph.NumEdges()));

  // Largest consistent labeling = maximum independent set.
  Solver solver(SolverOptions{});
  SolveResult result;
  Status status = solver.SolveGraph(conflict_graph, &result);
  if (!status.ok()) {
    std::fprintf(stderr, "solve failed: %s\n", status.ToString().c_str());
    return 1;
  }
  VerifyResult vr = VerifyIndependentSet(conflict_graph, result.set);
  std::printf("placed %llu labels (%.1f%% of POIs), overlap-free: %s\n",
              static_cast<unsigned long long>(result.set_size),
              100.0 * static_cast<double>(result.set_size) / kPois,
              vr.independent ? "yes" : "NO (bug!)");
  std::printf("greedy alone placed %llu; swaps recovered %llu more\n",
              static_cast<unsigned long long>(result.greedy.set_size),
              static_cast<unsigned long long>(result.set_size -
                                              result.greedy.set_size));

  // How many POIs got at least one of their four candidates?
  std::vector<uint8_t> labeled(kPois, 0);
  for (VertexId i = 0; i < candidates.size(); ++i) {
    if (result.set.Test(i)) labeled[i / 4] = 1;
  }
  int covered = 0;
  for (uint8_t l : labeled) covered += l;
  std::printf("%d/%d POIs carry a label\n", covered, kPois);
  return vr.independent ? 0 : 1;
}
