// Social-network analysis (paper Section 1): select a maximum set of
// mutually non-adjacent users -- e.g. an interference-free control group
// for an A/B experiment, where no two selected users are friends (so no
// treatment effect leaks across the friendship edge).
//
// The example compares every algorithm of the paper's Table 5 on one
// synthetic social graph and prints the quality/memory trade-off.
#include <cstdio>

#include "baselines/dynamic_update.h"
#include "baselines/time_forward.h"
#include "core/greedy.h"
#include "core/one_k_swap.h"
#include "core/two_k_swap.h"
#include "core/upper_bound.h"
#include "gen/plrg.h"
#include "graph/degree_sort.h"
#include "graph/graph_io.h"
#include "io/scratch.h"
#include "util/memory_tracker.h"

int main() {
  using namespace semis;
  // A 200k-user social graph with the usual heavy-tailed friend counts.
  Graph graph =
      GeneratePlrg(PlrgSpec::ForVerticesAndAvgDegree(200000, 8.0), 2024);
  std::printf("social graph: %u users, %llu friendships\n",
              graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()));

  ScratchDir scratch;
  Status s = ScratchDir::Create("semis-social", &scratch);
  if (!s.ok()) return 1;
  std::string unsorted = scratch.NewFilePath("graph");
  s = WriteGraphToAdjacencyFile(graph, unsorted);
  if (!s.ok()) return 1;
  std::string sorted = scratch.NewFilePath("sorted");
  s = BuildDegreeSortedAdjacencyFile(unsorted, sorted, {});
  if (!s.ok()) return 1;

  uint64_t bound = 0;
  // Display only: the bound is advisory, a failure keeps it at 0.
  ComputeIndependenceUpperBoundFile(sorted, &bound).IgnoreError();
  std::printf("upper bound on any control group: %llu users\n\n",
              static_cast<unsigned long long>(bound));

  auto report = [&](const char* name, const AlgoResult& r) {
    std::printf("%-22s %9llu users  (%.2f%% of bound)  mem=%s  %.2fs\n",
                name, static_cast<unsigned long long>(r.set_size),
                100.0 * static_cast<double>(r.set_size) /
                    static_cast<double>(bound),
                MemoryTracker::FormatBytes(r.peak_memory_bytes).c_str(),
                r.seconds);
  };

  AlgoResult dynamic;
  if (RunDynamicUpdate(graph, &dynamic).ok()) {
    report("dynamic-update (RAM)", dynamic);
  }
  AlgoResult external;
  if (RunTimeForwardMIS(unsorted, {}, &external).ok()) {
    report("time-forward (STXXL)", external);
  }
  AlgoResult baseline;
  if (RunGreedy(unsorted, {}, &baseline).ok()) {
    report("baseline (unsorted)", baseline);
  }
  AlgoResult greedy;
  if (!RunGreedy(sorted, {}, &greedy).ok()) return 1;
  report("greedy (sorted)", greedy);
  AlgoResult one_k;
  if (!RunOneKSwap(sorted, greedy.in_set, {}, &one_k).ok()) return 1;
  report("one-k-swap", one_k);
  AlgoResult two_k;
  if (!RunTwoKSwap(sorted, greedy.in_set, {}, &two_k).ok()) return 1;
  report("two-k-swap", two_k);

  std::printf(
      "\ntakeaway: the semi-external pipeline matches the in-memory\n"
      "baseline's quality while holding only a few bytes per user in\n"
      "RAM -- the friendship lists never leave the disk file.\n");
  return 0;
}
