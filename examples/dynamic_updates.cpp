// Incremental maintenance (the paper's future-work scenario): a social
// graph keeps evolving -- friendships form and dissolve -- and we keep a
// valid, large independent set current WITHOUT re-solving from scratch.
//
//   * base graph: solved once with the full pipeline;
//   * each update: O(1) in-memory work (eager independence);
//   * periodically: one sequential Repair() scan restores maximality.
//
// The example replays a day of simulated updates and compares the
// maintained set against a full re-solve.
#include <cstdio>
#include <vector>

#include "core/incremental.h"
#include "core/solver.h"
#include "gen/plrg.h"
#include "graph/graph_io.h"
#include "io/scratch.h"
#include "util/random.h"
#include "util/timer.h"

int main() {
  using namespace semis;
  ScratchDir scratch;
  if (!ScratchDir::Create("semis-dyn", &scratch).ok()) return 1;

  Graph base = GeneratePlrg(PlrgSpec::ForVerticesAndAvgDegree(150000, 7.0), 9);
  std::string path = scratch.NewFilePath("base.adj");
  if (!WriteGraphToAdjacencyFile(base, path).ok()) return 1;
  std::printf("base graph: %u users, %llu friendships\n", base.NumVertices(),
              static_cast<unsigned long long>(base.NumEdges()));

  Solver solver(SolverOptions{});
  SolveResult solved;
  if (!solver.SolveFile(path, &solved).ok()) return 1;
  std::printf("initial solve: %llu-vertex independent set (%.2fs)\n",
              static_cast<unsigned long long>(solved.set_size),
              solved.seconds);

  IncrementalMis maintained;
  if (!maintained.Initialize(path, solved.set).ok()) return 1;

  // A day of updates: 20k new friendships, 5k dissolved ones, with a
  // maximality repair every 5000 updates.
  Random rng(123);
  WallTimer day;
  int inserts = 0, deletes = 0, repairs = 0;
  const VertexId n = base.NumVertices();
  for (int step = 0; step < 25000; ++step) {
    if (step % 5 == 4) {
      // Dissolve an existing friendship: random endpoint, random neighbor.
      VertexId u = static_cast<VertexId>(rng.Uniform(n));
      if (base.Degree(u) == 0) continue;
      auto nbrs = base.Neighbors(u);
      VertexId v = nbrs[rng.Uniform(nbrs.size())];
      if (!maintained.DeleteEdge(u, v).ok()) return 1;
      deletes++;
    } else {
      VertexId u = static_cast<VertexId>(rng.Uniform(n));
      VertexId v = static_cast<VertexId>(rng.Uniform(n));
      if (u == v) continue;
      if (!maintained.InsertEdge(u, v).ok()) return 1;
      inserts++;
    }
    if (step % 5000 == 4999) {
      if (!maintained.Repair().ok()) return 1;
      repairs++;
    }
  }
  if (!maintained.Repair().ok()) return 1;
  repairs++;
  std::printf(
      "replayed %d inserts + %d deletes with %d repair scans in %.2fs\n",
      inserts, deletes, repairs, day.ElapsedSeconds());
  std::printf("maintained set: %llu vertices (%.2f%% of the initial size,\n"
              "with ~%d random edges forced through it)\n",
              static_cast<unsigned long long>(maintained.set_size()),
              100.0 * static_cast<double>(maintained.set_size()) /
                  static_cast<double>(solved.set_size),
              inserts);
  std::printf(
      "\ntakeaway: each update costs O(1) memory work; maximality is\n"
      "restored by sequential repair scans -- no random disk access, no\n"
      "full re-solve, exactly the regime the paper's conclusion targets.\n");
  return 0;
}
