// Quickstart: the 60-second tour of the semis public API.
//
//   1. generate (or load) a graph,
//   2. hand it to the Solver,
//   3. read back a large maximal independent set + the run's statistics.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/solver.h"
#include "core/verify.h"
#include "gen/plrg.h"
#include "util/memory_tracker.h"

int main() {
  using namespace semis;

  // A power-law random graph standing in for a small social network.
  PlrgSpec spec = PlrgSpec::ForVerticesAndAvgDegree(/*num_vertices=*/100000,
                                                    /*avg_degree=*/6.0);
  Graph graph = GeneratePlrg(spec, /*seed=*/42);
  std::printf("graph: %u vertices, %llu edges (avg degree %.2f)\n",
              graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()),
              graph.AverageDegree());

  // Default pipeline = the paper's best configuration:
  // degree-sort preprocessing + greedy + two-k-swap.
  SolverOptions options;
  options.verify = true;  // paranoid re-scan at the end
  Solver solver(options);

  SolveResult result;
  Status status = solver.SolveGraph(graph, &result);
  if (!status.ok()) {
    std::fprintf(stderr, "solve failed: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("independent set: %llu vertices\n",
              static_cast<unsigned long long>(result.set_size));
  std::printf("  greedy stage : %llu\n",
              static_cast<unsigned long long>(result.greedy.set_size));
  std::printf("  after two-k  : %llu (+%llu from swaps, %llu rounds)\n",
              static_cast<unsigned long long>(result.set_size),
              static_cast<unsigned long long>(result.set_size -
                                              result.greedy.set_size),
              static_cast<unsigned long long>(result.swap.rounds));
  std::printf("  peak memory  : %s (the graph itself stayed on disk)\n",
              MemoryTracker::FormatBytes(result.peak_memory_bytes).c_str());
  std::printf("  I/O          : %llu sequential scans, %.1f MB read\n",
              static_cast<unsigned long long>(result.io.sequential_scans),
              static_cast<double>(result.io.bytes_read) / (1 << 20));
  std::printf("  wall time    : %.2fs (incl. %.2fs preprocessing sort)\n",
              result.seconds, result.sort_seconds);

  // Membership is a bit per vertex id:
  int shown = 0;
  std::printf("first members:");
  for (VertexId v = 0; v < graph.NumVertices() && shown < 8; ++v) {
    if (result.set.Test(v)) {
      std::printf(" %u", v);
      shown++;
    }
  }
  std::printf(" ...\n");
  return 0;
}
