// The full semi-external pipeline on raw data, end to end:
//
//   SNAP-style text edge list  --(external sort)-->  adjacency file
//       --(external degree sort)-->  degree-sorted file
//       --(greedy + two-k-swap)-->  independent set
//
// Everything runs with bounded main memory: the edge list is converted
// without ever materializing the graph, and the solver holds O(|V|)
// bytes. This is the workflow for a graph that does NOT fit in RAM --
// the paper's motivating scenario.
#include <cstdio>

#include "core/solver.h"
#include "gen/plrg.h"
#include "graph/graph_io.h"
#include "io/scratch.h"
#include "util/memory_tracker.h"
#include "util/timer.h"

int main() {
  using namespace semis;
  ScratchDir scratch;
  if (!ScratchDir::Create("semis-pipeline", &scratch).ok()) return 1;

  // Step 0: fabricate the "downloaded" dataset: a text edge list, the
  // format SNAP and WebGraph dumps ship in.
  std::printf("[0] synthesizing a text edge list...\n");
  std::string edge_list = scratch.NewFilePath("edges.txt");
  {
    Graph g = GeneratePlrg(PlrgSpec::ForVerticesAndAvgDegree(300000, 7.0), 5);
    if (!WriteEdgeListText(g, edge_list).ok()) return 1;
    uint64_t size = 0;
    GetFileSize(edge_list, &size).IgnoreError();  // display only
    std::printf("    %u vertices, %llu edges, %.1f MB of text\n",
                g.NumVertices(),
                static_cast<unsigned long long>(g.NumEdges()),
                static_cast<double>(size) / (1 << 20));
  }

  // Step 1: external conversion (degree counting pass + edge sort).
  std::printf("[1] converting to the SADJ adjacency format "
              "(external sort, 16MB budget)...\n");
  std::string adjacency = scratch.NewFilePath("graph.adj");
  IoStats convert_io;
  EdgeListConvertOptions convert_opts;
  convert_opts.memory_budget_bytes = 16u << 20;
  convert_opts.stats = &convert_io;
  WallTimer convert_timer;
  Status s = ConvertEdgeListToAdjacencyFile(edge_list, adjacency,
                                            convert_opts);
  if (!s.ok()) {
    std::fprintf(stderr, "convert failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("    %.2fs, %.1f MB written, %llu sort passes\n",
              convert_timer.ElapsedSeconds(),
              static_cast<double>(convert_io.bytes_written) / (1 << 20),
              static_cast<unsigned long long>(convert_io.sort_passes));

  // Step 2+3: the Solver performs the degree sort, the greedy scan and
  // the two-k swaps, all against the on-disk file.
  std::printf("[2] degree sort + greedy + two-k-swap (16MB sort budget)...\n");
  SolverOptions options;
  options.sort_memory_budget_bytes = 16u << 20;
  options.verify = true;
  Solver solver(options);
  SolveResult result;
  s = solver.SolveFile(adjacency, &result);
  if (!s.ok()) {
    std::fprintf(stderr, "solve failed: %s\n", s.ToString().c_str());
    return 1;
  }

  uint64_t disk = 0;
  GetFileSize(adjacency, &disk).IgnoreError();  // display only
  std::printf("\nresults\n");
  std::printf("  independent set     : %llu vertices\n",
              static_cast<unsigned long long>(result.set_size));
  std::printf("  greedy -> +swaps    : %llu -> %llu (%llu rounds)\n",
              static_cast<unsigned long long>(result.greedy.set_size),
              static_cast<unsigned long long>(result.set_size),
              static_cast<unsigned long long>(result.swap.rounds));
  std::printf("  graph on disk       : %s\n",
              MemoryTracker::FormatBytes(disk).c_str());
  std::printf("  peak algorithm RAM  : %s  (%.1f%% of the graph)\n",
              MemoryTracker::FormatBytes(result.peak_memory_bytes).c_str(),
              100.0 * static_cast<double>(result.peak_memory_bytes) /
                  static_cast<double>(disk));
  std::printf("  sequential scans    : %llu (never a random disk access)\n",
              static_cast<unsigned long long>(result.io.sequential_scans));
  std::printf("  total wall time     : %.2fs\n", result.seconds);
  return 0;
}
