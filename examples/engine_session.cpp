// A resident MisEngine serving membership queries while the graph keeps
// changing underneath it -- the open -> serve -> mutate -> republish
// lifecycle:
//
//   * Open() solves the snapshot once and publishes it as epoch 1;
//   * reader threads answer queries from immutable epoch snapshots --
//     they NEVER block, not even while a repair scan is running;
//   * a mutator applies update batches to a private successor state,
//     repairs maximality, and Publish()es each repaired state as the
//     next epoch (an atomic pointer swap; old epochs retire when their
//     last reader lets go).
//
// The example runs one reader thread against a live mutator and prints
// the epochs the reader actually observed.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "gen/plrg.h"
#include "graph/graph_io.h"
#include "io/scratch.h"
#include "util/random.h"

int main() {
  using namespace semis;
  ScratchDir scratch;
  if (!ScratchDir::Create("semis-engine-session", &scratch).ok()) return 1;

  Graph base = GeneratePlrg(PlrgSpec::ForVerticesAndAvgDegree(100000, 6.0), 5);
  std::string path = scratch.NewFilePath("base.adj");
  if (!WriteGraphToAdjacencyFile(base, path).ok()) return 1;

  // Open = solve + publish epoch 1. The engine stays resident; all the
  // one-shot Solver knobs apply (this is the same pipeline).
  MisEngineOptions options;
  options.pipeline.num_shards = 4;
  options.pipeline.num_threads = 2;
  MisEngine engine(options);
  if (!engine.Open(path).ok()) return 1;
  std::printf("epoch 1 published: %llu-vertex independent set\n",
              static_cast<unsigned long long>(engine.Snapshot()->set_size()));

  // Reader: spin on Snapshot(), recording every distinct epoch it sees.
  // Snapshot() is a refcounted pointer copy -- wait-free in practice.
  std::atomic<bool> stop{false};
  std::vector<uint64_t> observed;
  std::thread reader([&] {
    uint64_t last = 0;
    uint64_t queries = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      EpochSnapshotRef snap = engine.Snapshot();
      queries += snap->Contains(queries % 100000) ? 1 : 1;
      if (snap->epoch() != last) {
        last = snap->epoch();
        observed.push_back(last);
      }
    }
    std::printf("reader: %llu queries served, never blocked\n",
                static_cast<unsigned long long>(queries));
  });

  // Mutator: three batches of random churn, each published as an epoch.
  Random rng(42);
  const VertexId n = base.NumVertices();
  for (int round = 0; round < 3; ++round) {
    std::vector<EdgeUpdate> batch;
    for (int i = 0; i < 2000; ++i) {
      VertexId u = static_cast<VertexId>(rng.Uniform(n));
      VertexId v = static_cast<VertexId>(rng.Uniform(n));
      if (u == v) continue;
      batch.push_back(rng.OneIn(0.3) ? EdgeUpdate::Delete(u, v)
                                     : EdgeUpdate::Insert(u, v));
    }
    if (!engine.ApplyBatch(batch).ok()) return 1;
    std::printf("round %d: applied %zu updates, staleness %llu\n", round + 1,
                batch.size(),
                static_cast<unsigned long long>(engine.staleness()));
    if (!engine.Repair().ok()) return 1;
    EpochSnapshotRef epoch = engine.Publish();
    const EpochStats& es = epoch->stats();
    std::printf(
        "epoch %llu published: %llu vertices (%llu updates folded in, "
        "repair re-added %llu)\n",
        static_cast<unsigned long long>(epoch->epoch()),
        static_cast<unsigned long long>(epoch->set_size()),
        static_cast<unsigned long long>(es.updates),
        static_cast<unsigned long long>(es.repair_added));
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  std::printf("reader observed epochs:");
  for (uint64_t e : observed) std::printf(" %llu",
                                          static_cast<unsigned long long>(e));
  std::printf("\n");
  return 0;
}
