// semis command-line tool: the operational entry point a downstream user
// drives from shell scripts. Wraps the library's pipelines:
//
//   semis_cli generate --vertices N [--beta B | --avg-degree D]
//                      [--seed S] --out graph.adj
//   semis_cli convert  <edges.txt> <graph.adj> [--memory-mb M]
//   semis_cli sort     <graph.adj> <graph.sadj> [--memory-mb M] [--fan-in K]
//   semis_cli shard    <graph.adj> <graph.sadjs> [--shards N]
//   semis_cli stats    <graph.adj>
//   semis_cli bound    <graph.adj>
//   semis_cli solve    <graph.adj> [--algo baseline|greedy|onek|twok]
//                      [--rounds R] [--shards N] [--threads T]
//                      [--out set.txt] [--verify]
//                      (--shards > 1 runs the WHOLE pipeline -- greedy and
//                       the swap stage -- over shards with T threads; the
//                       result is byte-identical for every thread count)
//   semis_cli cover    <graph.adj> [--out cover.txt]
//   semis_cli color    <graph.sadj> [--mis-rounds R]
//
// Every command is semi-external: O(|V|) memory, sequential file I/O.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/coloring.h"
#include "core/solver.h"
#include "core/upper_bound.h"
#include "core/verify.h"
#include "core/vertex_cover.h"
#include "gen/plrg.h"
#include "graph/degree_sort.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "graph/sharded_adjacency_file.h"
#include "util/memory_tracker.h"

namespace semis {
namespace cli {
namespace {

void PrintUsage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: semis_cli <command> [args]\n"
      "  generate --vertices N [--beta B | --avg-degree D] [--seed S] "
      "--out F\n"
      "  convert  <edges.txt> <graph.adj> [--memory-mb M]\n"
      "  sort     <graph.adj> <graph.sadj> [--memory-mb M] [--fan-in K]\n"
      "  shard    <graph.adj> <graph.sadjs> [--shards N]\n"
      "  stats    <graph.adj>\n"
      "  bound    <graph.adj>\n"
      "  solve    <graph.adj> [--algo baseline|greedy|onek|twok] "
      "[--rounds R] [--shards N] [--threads T] [--out set.txt] [--verify]\n"
      "  cover    <graph.adj> [--out cover.txt]\n"
      "  color    <graph.sadj> [--mis-rounds R]\n");
}

// Bad usage (missing/unknown command or arguments) is an error: print the
// usage to stderr and exit non-zero. Only an explicit help request prints
// to stdout and exits 0.
int Usage() {
  PrintUsage(stderr);
  return 1;
}

// Tiny flag parser: positional args + --key value pairs. A --help/-h in
// flag position (not consumed as the value of a preceding --key) requests
// usage output.
struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;
  bool help = false;

  static Args Parse(int argc, char** argv, int start) {
    Args a;
    for (int i = start; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        a.help = true;
      } else if (arg.rfind("--", 0) == 0) {
        std::string key = arg.substr(2);
        std::string value;
        if (key == "verify") {  // boolean flag
          value = "1";
        } else if (i + 1 < argc) {
          value = argv[++i];
        }
        a.flags.emplace_back(key, value);
      } else {
        a.positional.push_back(arg);
      }
    }
    return a;
  }

  std::string Get(const std::string& key, const std::string& def = "") const {
    for (const auto& [k, v] : flags) {
      if (k == key) return v;
    }
    return def;
  }
  bool Has(const std::string& key) const {
    for (const auto& [k, v] : flags) {
      if (k == key) return true;
    }
    return false;
  }
};

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

Status WriteSetText(const BitVector& set, const std::string& path) {
  SequentialFileWriter w;
  SEMIS_RETURN_IF_ERROR(w.Open(path));
  char line[32];
  for (size_t v = 0; v < set.size(); ++v) {
    if (set.Test(v)) {
      int n = std::snprintf(line, sizeof(line), "%zu\n", v);
      SEMIS_RETURN_IF_ERROR(w.Append(line, static_cast<size_t>(n)));
    }
  }
  return w.Close();
}

int CmdGenerate(const Args& args) {
  if (!args.Has("vertices") || !args.Has("out")) return Usage();
  uint64_t n = std::strtoull(args.Get("vertices").c_str(), nullptr, 10);
  uint64_t seed = std::strtoull(args.Get("seed", "42").c_str(), nullptr, 10);
  PlrgSpec spec;
  if (args.Has("avg-degree")) {
    spec = PlrgSpec::ForVerticesAndAvgDegree(
        n, std::atof(args.Get("avg-degree").c_str()));
  } else {
    spec = PlrgSpec::ForVertexCount(n,
                                    std::atof(args.Get("beta", "2.0").c_str()));
  }
  Graph g = GeneratePlrg(spec, seed);
  Status s = WriteGraphToAdjacencyFile(g, args.Get("out"));
  if (!s.ok()) return Fail(s);
  std::printf("wrote %s: %u vertices, %llu edges (alpha=%.2f beta=%.2f)\n",
              args.Get("out").c_str(), g.NumVertices(),
              static_cast<unsigned long long>(g.NumEdges()), spec.alpha,
              spec.beta);
  return 0;
}

int CmdConvert(const Args& args) {
  if (args.positional.size() != 2) return Usage();
  EdgeListConvertOptions opts;
  opts.memory_budget_bytes =
      std::strtoull(args.Get("memory-mb", "64").c_str(), nullptr, 10) << 20;
  IoStats io;
  opts.stats = &io;
  Status s = ConvertEdgeListToAdjacencyFile(args.positional[0],
                                            args.positional[1], opts);
  if (!s.ok()) return Fail(s);
  std::printf("converted %s -> %s (%s read, %s written)\n",
              args.positional[0].c_str(), args.positional[1].c_str(),
              MemoryTracker::FormatBytes(io.bytes_read).c_str(),
              MemoryTracker::FormatBytes(io.bytes_written).c_str());
  return 0;
}

int CmdSort(const Args& args) {
  if (args.positional.size() != 2) return Usage();
  DegreeSortOptions opts;
  opts.memory_budget_bytes =
      std::strtoull(args.Get("memory-mb", "64").c_str(), nullptr, 10) << 20;
  opts.fan_in = std::strtoull(args.Get("fan-in", "16").c_str(), nullptr, 10);
  IoStats io;
  opts.stats = &io;
  Status s = BuildDegreeSortedAdjacencyFile(args.positional[0],
                                            args.positional[1], opts);
  if (!s.ok()) return Fail(s);
  std::printf("degree-sorted %s -> %s (%llu sort passes)\n",
              args.positional[0].c_str(), args.positional[1].c_str(),
              static_cast<unsigned long long>(io.sort_passes));
  return 0;
}

// Parses a shard/thread count flag: rejects negatives and garbage instead
// of letting them wrap through an unsigned cast.
bool ParseCount(const std::string& text, long min, long max, uint32_t* out) {
  char* end = nullptr;
  long v = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || v < min || v > max) return false;
  *out = static_cast<uint32_t>(v);
  return true;
}

int CmdShard(const Args& args) {
  if (args.positional.size() != 2) return Usage();
  uint32_t num_shards = 0;
  if (!ParseCount(args.Get("shards", "8"), 1, kMaxAdjacencyShards,
                  &num_shards)) {
    std::fprintf(stderr, "error: --shards must be in [1, %u]\n",
                 kMaxAdjacencyShards);
    return 1;
  }
  IoStats io;
  Status s = ShardAdjacencyFile(args.positional[0], args.positional[1],
                                num_shards, &io);
  if (!s.ok()) return Fail(s);
  ShardedAdjacencyManifest manifest;
  s = ReadShardedAdjacencyManifest(args.positional[1], &manifest);
  if (!s.ok()) return Fail(s);
  std::printf("sharded %s -> %s (%u shards)\n", args.positional[0].c_str(),
              args.positional[1].c_str(), manifest.num_shards());
  for (uint32_t i = 0; i < manifest.num_shards(); ++i) {
    std::printf("  shard %-3u: %llu records, %llu directed edges\n", i,
                static_cast<unsigned long long>(
                    manifest.shards[i].num_records),
                static_cast<unsigned long long>(
                    manifest.shards[i].num_directed_edges));
  }
  return 0;
}

int CmdStats(const Args& args) {
  if (args.positional.size() != 1) return Usage();
  GraphStats stats;
  Status s = ComputeGraphStatsFromFile(args.positional[0], &stats);
  if (!s.ok()) return Fail(s);
  std::printf("vertices      : %llu\n",
              static_cast<unsigned long long>(stats.num_vertices));
  std::printf("edges         : %llu\n",
              static_cast<unsigned long long>(stats.num_edges));
  std::printf("degree min/avg/max : %u / %.2f / %u\n", stats.min_degree,
              stats.avg_degree, stats.max_degree);
  std::printf("isolated      : %llu\n",
              static_cast<unsigned long long>(stats.isolated_vertices));
  std::printf("power-law fit : beta=%.2f alpha=%.2f\n", stats.EstimateBeta(),
              stats.EstimateAlpha());
  return 0;
}

int CmdBound(const Args& args) {
  if (args.positional.size() != 1) return Usage();
  uint64_t bound = 0;
  IoStats io;
  Status s =
      ComputeIndependenceUpperBoundFile(args.positional[0], &bound, &io);
  if (!s.ok()) return Fail(s);
  std::printf("independence number <= %llu (1 scan, %s read)\n",
              static_cast<unsigned long long>(bound),
              MemoryTracker::FormatBytes(io.bytes_read).c_str());
  return 0;
}

int CmdSolve(const Args& args) {
  if (args.positional.size() != 1) return Usage();
  SolverOptions opts;
  std::string algo = args.Get("algo", "twok");
  if (algo == "baseline") {
    opts.degree_sort = false;
    opts.swap = SwapMode::kNone;
  } else if (algo == "greedy") {
    opts.swap = SwapMode::kNone;
  } else if (algo == "onek") {
    opts.swap = SwapMode::kOneK;
  } else if (algo == "twok") {
    opts.swap = SwapMode::kTwoK;
  } else {
    return Usage();
  }
  opts.max_swap_rounds =
      static_cast<uint32_t>(std::atoi(args.Get("rounds", "0").c_str()));
  if (!ParseCount(args.Get("shards", "0"), 0, kMaxAdjacencyShards,
                  &opts.num_shards)) {
    std::fprintf(stderr, "error: --shards must be in [0, %u]\n",
                 kMaxAdjacencyShards);
    return 1;
  }
  if (!ParseCount(args.Get("threads", "1"), 0, 4096, &opts.num_threads)) {
    std::fprintf(stderr, "error: --threads must be in [0, 4096]\n");
    return 1;
  }
  opts.verify = args.Has("verify");
  Solver solver(opts);
  SolveResult res;
  Status s = solver.SolveFile(args.positional[0], &res);
  if (!s.ok()) return Fail(s);
  std::printf("independent set: %llu vertices\n",
              static_cast<unsigned long long>(res.set_size));
  std::printf("  greedy stage : %llu, swaps added %llu in %llu rounds\n",
              static_cast<unsigned long long>(res.greedy.set_size),
              static_cast<unsigned long long>(res.set_size -
                                              res.greedy.set_size),
              static_cast<unsigned long long>(res.swap.rounds));
  std::printf("  time %.2fs, peak memory %s, %llu scans, %s read\n",
              res.seconds,
              MemoryTracker::FormatBytes(res.peak_memory_bytes).c_str(),
              static_cast<unsigned long long>(res.io.sequential_scans),
              MemoryTracker::FormatBytes(res.io.bytes_read).c_str());
  if (opts.num_shards > 1) {
    std::printf("  sharded pipeline: %u shards, %u threads, split in %.2fs\n",
                opts.num_shards, opts.num_threads, res.shard_seconds);
  }
  if (args.Has("out")) {
    s = WriteSetText(res.set, args.Get("out"));
    if (!s.ok()) return Fail(s);
    std::printf("  members written to %s\n", args.Get("out").c_str());
  }
  return 0;
}

int CmdCover(const Args& args) {
  if (args.positional.size() != 1) return Usage();
  VertexCoverResult res;
  Status s =
      ComputeVertexCoverFile(args.positional[0], SolverOptions{}, &res);
  if (!s.ok()) return Fail(s);
  std::printf("vertex cover: %llu vertices (complement of a %llu-vertex "
              "independent set)\n",
              static_cast<unsigned long long>(res.cover_size),
              static_cast<unsigned long long>(res.mis.set_size));
  if (args.Has("out")) {
    s = WriteSetText(res.cover, args.Get("out"));
    if (!s.ok()) return Fail(s);
    std::printf("  members written to %s\n", args.Get("out").c_str());
  }
  return 0;
}

int CmdColor(const Args& args) {
  if (args.positional.size() != 1) return Usage();
  ColoringOptions opts;
  opts.max_mis_rounds =
      static_cast<uint32_t>(std::atoi(args.Get("mis-rounds", "8").c_str()));
  ColoringResult res;
  Status s = ComputeGreedyColoringFile(args.positional[0], opts, &res);
  if (!s.ok()) return Fail(s);
  uint64_t conflicts = 0;
  s = VerifyColoringFile(args.positional[0], res.color, &conflicts);
  if (!s.ok()) return Fail(s);
  std::printf("coloring: %u colors (%llu vertices via MIS rounds), "
              "verified %s\n",
              res.num_colors,
              static_cast<unsigned long long>(res.colored_by_mis),
              conflicts == 0 ? "proper" : "IMPROPER");
  return conflicts == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    PrintUsage(stdout);
    return 0;
  }
  Args args = Args::Parse(argc, argv, 2);
  if (args.help) {
    PrintUsage(stdout);
    return 0;
  }
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "convert") return CmdConvert(args);
  if (cmd == "sort") return CmdSort(args);
  if (cmd == "shard") return CmdShard(args);
  if (cmd == "stats") return CmdStats(args);
  if (cmd == "bound") return CmdBound(args);
  if (cmd == "solve") return CmdSolve(args);
  if (cmd == "cover") return CmdCover(args);
  if (cmd == "color") return CmdColor(args);
  return Usage();
}

}  // namespace
}  // namespace cli
}  // namespace semis

int main(int argc, char** argv) { return semis::cli::Main(argc, argv); }
