// semis command-line tool: the operational entry point a downstream user
// drives from shell scripts. Wraps the library's pipelines:
//
//   semis_cli generate --vertices N [--beta B | --avg-degree D]
//                      [--seed S] --out graph.adj
//   semis_cli convert  <edges.txt> <graph.adj> [--memory-mb M]
//   semis_cli sort     <graph.adj> <graph.sadj> [--memory-mb M] [--fan-in K]
//   semis_cli shard    <graph.adj> <graph.sadjs> [--shards N]
//   semis_cli stats    <graph.adj>
//   semis_cli bound    <graph.adj>
//   semis_cli solve    <graph.adj|graph.sadjs>
//                      [--algo baseline|greedy|onek|twok]
//                      [--rounds R] [--shards N] [--threads T]
//                      [--out set.txt] [--verify]
//                      (--shards > 1 runs the WHOLE pipeline -- greedy and
//                       the swap stage -- over shards with T threads; the
//                       result is byte-identical for every thread count.
//                       A SADJS manifest is consumed directly; when its
//                       degree-sorted flag is cleared -- e.g. by a
//                       compaction -- the sorted-order algorithms degrade
//                       to BASELINE order and a warning is printed.)
//   semis_cli cover    <graph.adj> [--out cover.txt]
//   semis_cli color    <graph.sadj> [--mis-rounds R]
//   semis_cli update   <graph.adj|graph.sadjs> --stream <updates.txt>
//                      [--shards N] [--threads T] [--batch B]
//                      [--compact-threshold E] [--compact] [--resort]
//                      [--set set.txt] [--out set.txt] [--verify]
//                      (maintains an independent set under the edge-update
//                       stream: batched apply -> parallel repair; the
//                       result is byte-identical for every thread count.
//                       A monolithic input is sharded to <input>.sadjs
//                       first; a SADJS manifest is updated in place. A
//                       shard whose delta log reaches E entries is
//                       compacted automatically, default 65536, 0 = off.
//                       --resort schedules the background re-sort: when a
//                       compaction clears the degree-sorted flag, the base
//                       shards are rewritten in (degree, id) order through
//                       the same atomic epoch commit.)
//   semis_cli engine   <graph.adj|graph.sadjs> --script <session.txt>
//                      [--algo baseline|greedy|onek|twok] [--rounds R]
//                      [--shards N] [--threads T] [--compact-threshold E]
//                      [--out set.txt] [--stats]
//                      (drives a resident MisEngine through a scripted
//                       open -> query -> update -> repair -> publish
//                       session; queries are served from immutable epoch
//                       snapshots that never block on mutation)
//   semis_cli unshard  <graph.sadjs> <graph.adj>
//   semis_cli fsck     <graph.sadjs> [--gc]
//                      (resolves a sharded store's root -- legacy SADM
//                       manifest or SEPR epoch root pointer -- validates
//                       the serving epoch, reports a fallback to the
//                       previous epoch, and lists files no live epoch
//                       references; --gc makes the fallback durable and
//                       removes the orphans)
//
// Every command is semi-external: O(|V|) memory, sequential file I/O.
//
// The update stream is a text file with one update per line:
//   + u v    insert edge (u, v)
//   - u v    delete edge (u, v)
// '#' starts a comment; blank lines are skipped.
//
// The engine session script adds lifecycle verbs to the same syntax:
//   + u v / - u v   queue an update
//   apply           ApplyBatch() the queued updates
//   repair          restore maximality of the successor state
//   compact         fold the pending delta into the base shards
//   publish         freeze the successor into a new served epoch
//   query v [v...]  membership queries against the CURRENT epoch
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <algorithm>

#include "core/coloring.h"
#include "core/engine.h"
#include "core/incremental_stream.h"
#include "core/solver.h"
#include "core/upper_bound.h"
#include "core/verify.h"
#include "core/vertex_cover.h"
#include "gen/plrg.h"
#include "graph/degree_sort.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "graph/shard_store.h"
#include "graph/sharded_adjacency_file.h"
#include "io/epoch_journal.h"
#include "util/memory_tracker.h"

namespace semis {
namespace cli {
namespace {

void PrintUsage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: semis_cli <command> [args]\n"
      "  generate --vertices N [--beta B | --avg-degree D] [--seed S] "
      "--out F\n"
      "  convert  <edges.txt> <graph.adj> [--memory-mb M]\n"
      "  sort     <graph.adj> <graph.sadj> [--memory-mb M] [--fan-in K]\n"
      "  shard    <graph.adj> <graph.sadjs> [--shards N]\n"
      "  stats    <graph.adj>\n"
      "  bound    <graph.adj>\n"
      "  solve    <graph.adj|graph.sadjs> [--engine greedy|rounds] "
      "[--algo baseline|greedy|onek|twok] [--rounds R] [--shards N] "
      "[--threads T] [--out set.txt] [--verify] [--stats]\n"
      "  cover    <graph.adj> [--out cover.txt]\n"
      "  color    <graph.sadj> [--mis-rounds R]\n"
      "  update   <graph.adj|graph.sadjs> --stream <updates.txt> "
      "[--shards N] [--threads T] [--batch B] [--compact-threshold E] "
      "[--compact] [--resort] [--set set.txt] [--out set.txt] [--verify] "
      "[--stats]\n"
      "  engine   <graph.adj|graph.sadjs> --script <session.txt> "
      "[--algo baseline|greedy|onek|twok] [--rounds R] [--shards N] "
      "[--threads T] [--compact-threshold E] [--out set.txt] [--stats]\n"
      "  unshard  <graph.sadjs> <graph.adj>\n"
      "  fsck     <graph.sadjs> [--gc]\n");
}

// Bad usage (missing/unknown command or arguments) is an error: print the
// usage to stderr and exit non-zero. Only an explicit help request prints
// to stdout and exits 0.
int Usage() {
  PrintUsage(stderr);
  return 1;
}

// Tiny flag parser: positional args + --key value pairs. A --help/-h in
// flag position (not consumed as the value of a preceding --key) requests
// usage output.
struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;
  bool help = false;

  static Args Parse(int argc, char** argv, int start) {
    Args a;
    for (int i = start; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        a.help = true;
      } else if (arg.rfind("--", 0) == 0) {
        std::string key = arg.substr(2);
        std::string value;
        if (key == "verify" || key == "compact" || key == "stats" ||
            key == "resort" || key == "gc") {  // boolean flags
          value = "1";
        } else if (i + 1 < argc) {
          value = argv[++i];
        }
        a.flags.emplace_back(key, value);
      } else {
        a.positional.push_back(arg);
      }
    }
    return a;
  }

  std::string Get(const std::string& key, const std::string& def = "") const {
    for (const auto& [k, v] : flags) {
      if (k == key) return v;
    }
    return def;
  }
  bool Has(const std::string& key) const {
    for (const auto& [k, v] : flags) {
      if (k == key) return true;
    }
    return false;
  }
};

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

Status WriteSetText(const BitVector& set, const std::string& path) {
  SequentialFileWriter w;
  SEMIS_RETURN_IF_ERROR(w.Open(path));
  char line[32];
  for (size_t v = 0; v < set.size(); ++v) {
    if (set.Test(v)) {
      int n = std::snprintf(line, sizeof(line), "%zu\n", v);
      SEMIS_RETURN_IF_ERROR(w.Append(line, static_cast<size_t>(n)));
    }
  }
  return w.Close();
}

int CmdGenerate(const Args& args) {
  if (!args.Has("vertices") || !args.Has("out")) return Usage();
  uint64_t n = std::strtoull(args.Get("vertices").c_str(), nullptr, 10);
  uint64_t seed = std::strtoull(args.Get("seed", "42").c_str(), nullptr, 10);
  PlrgSpec spec;
  if (args.Has("avg-degree")) {
    spec = PlrgSpec::ForVerticesAndAvgDegree(
        n, std::atof(args.Get("avg-degree").c_str()));
  } else {
    spec = PlrgSpec::ForVertexCount(n,
                                    std::atof(args.Get("beta", "2.0").c_str()));
  }
  Graph g = GeneratePlrg(spec, seed);
  Status s = WriteGraphToAdjacencyFile(g, args.Get("out"));
  if (!s.ok()) return Fail(s);
  std::printf("wrote %s: %u vertices, %llu edges (alpha=%.2f beta=%.2f)\n",
              args.Get("out").c_str(), g.NumVertices(),
              static_cast<unsigned long long>(g.NumEdges()), spec.alpha,
              spec.beta);
  return 0;
}

int CmdConvert(const Args& args) {
  if (args.positional.size() != 2) return Usage();
  EdgeListConvertOptions opts;
  opts.memory_budget_bytes =
      std::strtoull(args.Get("memory-mb", "64").c_str(), nullptr, 10) << 20;
  IoStats io;
  opts.stats = &io;
  Status s = ConvertEdgeListToAdjacencyFile(args.positional[0],
                                            args.positional[1], opts);
  if (!s.ok()) return Fail(s);
  std::printf("converted %s -> %s (%s read, %s written)\n",
              args.positional[0].c_str(), args.positional[1].c_str(),
              MemoryTracker::FormatBytes(io.bytes_read).c_str(),
              MemoryTracker::FormatBytes(io.bytes_written).c_str());
  return 0;
}

int CmdSort(const Args& args) {
  if (args.positional.size() != 2) return Usage();
  DegreeSortOptions opts;
  opts.memory_budget_bytes =
      std::strtoull(args.Get("memory-mb", "64").c_str(), nullptr, 10) << 20;
  opts.fan_in = std::strtoull(args.Get("fan-in", "16").c_str(), nullptr, 10);
  IoStats io;
  opts.stats = &io;
  Status s = BuildDegreeSortedAdjacencyFile(args.positional[0],
                                            args.positional[1], opts);
  if (!s.ok()) return Fail(s);
  std::printf("degree-sorted %s -> %s (%llu sort passes)\n",
              args.positional[0].c_str(), args.positional[1].c_str(),
              static_cast<unsigned long long>(io.sort_passes));
  return 0;
}

// Parses a shard/thread count flag: rejects negatives and garbage instead
// of letting them wrap through an unsigned cast.
bool ParseCount(const std::string& text, long min, long max, uint32_t* out) {
  char* end = nullptr;
  long v = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || v < min || v > max) return false;
  *out = static_cast<uint32_t>(v);
  return true;
}

// True when the file at `path` is a sharded-store root: a SADJS manifest
// or a SEPR epoch root pointer (both detected by magic). Unreadable files
// are "not a manifest" -- the consuming command will surface the real
// open error.
bool IsManifestFile(const std::string& path) {
  uint32_t magic = 0;
  return ProbeFileMagic(path, &magic).ok() &&
         (magic == kShardManifestMagic || magic == kEpochRootMagic);
}

// The degree-sorted-flag warning shared by solve/update/engine: a cleared
// flag (typically a compaction that changed record degrees) silently
// demotes GREEDY to BASELINE order until the store is re-sorted.
// `resort_status` tells the operator where the background re-sort stands
// ("scheduled ...", "not scheduled ...").
void WarnNotDegreeSorted(const std::string& manifest_path,
                         const std::string& resort_status) {
  std::fprintf(
      stderr,
      "warning: %s is not degree-sorted (the flag was cleared, e.g. by a "
      "compaction); sorted-order algorithms run in BASELINE order and set "
      "quality may degrade. Background re-sort: %s.\n",
      manifest_path.c_str(), resort_status.c_str());
}

// What WarnNotDegreeSorted reports when no re-sort is coming.
const char kResortNotScheduled[] =
    "not scheduled (run `semis_cli update --resort` to restore GREEDY "
    "order)";

int CmdShard(const Args& args) {
  if (args.positional.size() != 2) return Usage();
  uint32_t num_shards = 0;
  if (!ParseCount(args.Get("shards", "8"), 1, kMaxAdjacencyShards,
                  &num_shards)) {
    std::fprintf(stderr, "error: --shards must be in [1, %u]\n",
                 kMaxAdjacencyShards);
    return 1;
  }
  IoStats io;
  Status s = ShardAdjacencyFile(args.positional[0], args.positional[1],
                                num_shards, &io);
  if (!s.ok()) return Fail(s);
  ShardedAdjacencyManifest manifest;
  s = ReadShardedAdjacencyManifest(args.positional[1], &manifest);
  if (!s.ok()) return Fail(s);
  std::printf("sharded %s -> %s (%u shards)\n", args.positional[0].c_str(),
              args.positional[1].c_str(), manifest.num_shards());
  for (uint32_t i = 0; i < manifest.num_shards(); ++i) {
    std::printf("  shard %-3u: %llu records, %llu directed edges\n", i,
                static_cast<unsigned long long>(
                    manifest.shards[i].num_records),
                static_cast<unsigned long long>(
                    manifest.shards[i].num_directed_edges));
  }
  return 0;
}

int CmdStats(const Args& args) {
  if (args.positional.size() != 1) return Usage();
  GraphStats stats;
  Status s = ComputeGraphStatsFromFile(args.positional[0], &stats);
  if (!s.ok()) return Fail(s);
  std::printf("vertices      : %llu\n",
              static_cast<unsigned long long>(stats.num_vertices));
  std::printf("edges         : %llu\n",
              static_cast<unsigned long long>(stats.num_edges));
  std::printf("degree min/avg/max : %u / %.2f / %u\n", stats.min_degree,
              stats.avg_degree, stats.max_degree);
  std::printf("isolated      : %llu\n",
              static_cast<unsigned long long>(stats.isolated_vertices));
  std::printf("power-law fit : beta=%.2f alpha=%.2f\n", stats.EstimateBeta(),
              stats.EstimateAlpha());
  return 0;
}

int CmdBound(const Args& args) {
  if (args.positional.size() != 1) return Usage();
  uint64_t bound = 0;
  IoStats io;
  Status s =
      ComputeIndependenceUpperBoundFile(args.positional[0], &bound, &io);
  if (!s.ok()) return Fail(s);
  std::printf("independence number <= %llu (1 scan, %s read)\n",
              static_cast<unsigned long long>(bound),
              MemoryTracker::FormatBytes(io.bytes_read).c_str());
  return 0;
}

int CmdSolve(const Args& args) {
  if (args.positional.size() != 1) return Usage();
  SolverOptions opts;
  std::string algo = args.Get("algo", "twok");
  if (algo == "baseline") {
    opts.degree_sort = false;
    opts.swap = SwapMode::kNone;
  } else if (algo == "greedy") {
    opts.swap = SwapMode::kNone;
  } else if (algo == "onek") {
    opts.swap = SwapMode::kOneK;
  } else if (algo == "twok") {
    opts.swap = SwapMode::kTwoK;
  } else {
    return Usage();
  }
  // --engine picks the initial-set engine; --algo keeps selecting the
  // swap stage (and, for the greedy engine, GREEDY vs BASELINE order).
  const std::string engine = args.Get("engine", "greedy");
  if (engine == "rounds") {
    opts.pipeline.engine = SolveEngine::kRounds;
    // Min-id rounds are record-order-free: never sort a monolithic
    // input, never demand (or warn about) a sorted manifest.
    opts.degree_sort = false;
  } else if (engine != "greedy") {
    std::fprintf(stderr, "error: unknown --engine '%s' (greedy|rounds)\n",
                 engine.c_str());
    return 1;
  }
  opts.max_swap_rounds =
      static_cast<uint32_t>(std::atoi(args.Get("rounds", "0").c_str()));
  if (!ParseCount(args.Get("shards", "0"), 0, kMaxAdjacencyShards,
                  &opts.pipeline.num_shards)) {
    std::fprintf(stderr, "error: --shards must be in [0, %u]\n",
                 kMaxAdjacencyShards);
    return 1;
  }
  if (!ParseCount(args.Get("threads", "1"), 0, 4096,
                  &opts.pipeline.num_threads)) {
    std::fprintf(stderr, "error: --threads must be in [0, 4096]\n");
    return 1;
  }
  opts.verify = args.Has("verify");
  // A SADJS manifest is consumed directly (the file fixes the shard
  // count). Shards cannot be sorted in place, so a sorted-order algo on
  // an unsorted manifest degrades to BASELINE order -- loudly.
  const bool is_manifest = IsManifestFile(args.positional[0]);
  if (is_manifest && opts.degree_sort) {
    ShardedAdjacencyManifest manifest;
    Status ms = ReadShardStoreManifest(args.positional[0], &manifest);
    if (!ms.ok()) return Fail(ms);
    if (!manifest.header.IsDegreeSorted()) {
      WarnNotDegreeSorted(args.positional[0], kResortNotScheduled);
      opts.degree_sort = false;
    }
  }
  Solver solver(opts);
  SolveResult res;
  Status s = is_manifest
                 ? solver.SolveShardedFile(args.positional[0], &res)
                 : solver.SolveFile(args.positional[0], &res);
  if (!s.ok()) return Fail(s);
  const bool rounds_engine = opts.pipeline.engine == SolveEngine::kRounds;
  const AlgoResult& first_stage = rounds_engine ? res.rounds : res.greedy;
  std::printf("independent set: %llu vertices\n",
              static_cast<unsigned long long>(res.set_size));
  std::printf("  %s stage : %llu, swaps added %llu in %llu rounds\n",
              rounds_engine ? "rounds" : "greedy",
              static_cast<unsigned long long>(first_stage.set_size),
              static_cast<unsigned long long>(res.set_size -
                                              first_stage.set_size),
              static_cast<unsigned long long>(res.swap.rounds));
  std::printf("  time %.2fs, peak memory %s, %llu scans, %s read\n",
              res.seconds,
              MemoryTracker::FormatBytes(res.peak_memory_bytes).c_str(),
              static_cast<unsigned long long>(res.io.sequential_scans),
              MemoryTracker::FormatBytes(res.io.bytes_read).c_str());
  if (opts.pipeline.num_shards > 1 && !is_manifest) {
    std::printf("  sharded pipeline: %u shards, %u threads, split in %.2fs\n",
                opts.pipeline.num_shards, opts.pipeline.num_threads,
                res.shard_seconds);
  }
  if (args.Has("stats")) {
    // Whether the consumed records were degree-sorted (GREEDY order) --
    // false on BASELINE runs and on manifests whose flag was cleared.
    std::printf("  degree_sorted=%s\n", res.degree_sorted ? "true" : "false");
    if (rounds_engine) {
      // Every counter here is a pure function of the graph, so the line
      // is identical at every shard/thread count (the smoke test holds
      // it to that). The solve pipeline never caps engine rounds, so
      // final frontier printing anything but 0 means the run is broken.
      const uint64_t final_frontier =
          res.rounds.round_stats.empty()
              ? 0
              : res.rounds.round_stats.back().frontier_after;
      std::printf("  rounds engine  : %llu rounds, %llu winners, "
                  "final frontier %llu\n",
                  static_cast<unsigned long long>(res.rounds.rounds),
                  static_cast<unsigned long long>(res.rounds.set_size),
                  static_cast<unsigned long long>(final_frontier));
    }
    // Shard-decode counters, all zero on the unsharded single-file path.
    // records_decoded spans EVERY shard scan (the initial engine's passes
    // plus each swap round's rescans); the block-ring line covers only
    // the cursor-driven stages, which is why records per block don't
    // divide.
    const double decode_seconds =
        res.greedy.seconds + res.rounds.seconds + res.swap.seconds > 0.0
            ? res.greedy.seconds + res.rounds.seconds + res.swap.seconds
            : res.seconds;
    const double records_per_sec =
        decode_seconds > 0.0
            ? static_cast<double>(res.io.records_decoded) / decode_seconds
            : 0.0;
    std::printf("  decode pipeline: %llu records over all shard scans "
                "(%.0f records/s)\n",
                static_cast<unsigned long long>(res.io.records_decoded),
                records_per_sec);
    std::printf("  block ring     : %llu blocks, arena %s, "
                "peak buffered %s\n",
                static_cast<unsigned long long>(res.io.blocks_decoded),
                MemoryTracker::FormatBytes(res.io.arena_bytes).c_str(),
                MemoryTracker::FormatBytes(
                    res.io.peak_buffered_bytes).c_str());
  }
  if (args.Has("out")) {
    s = WriteSetText(res.set, args.Get("out"));
    if (!s.ok()) return Fail(s);
    std::printf("  members written to %s\n", args.Get("out").c_str());
  }
  return 0;
}

int CmdCover(const Args& args) {
  if (args.positional.size() != 1) return Usage();
  VertexCoverResult res;
  Status s =
      ComputeVertexCoverFile(args.positional[0], SolverOptions{}, &res);
  if (!s.ok()) return Fail(s);
  std::printf("vertex cover: %llu vertices (complement of a %llu-vertex "
              "independent set)\n",
              static_cast<unsigned long long>(res.cover_size),
              static_cast<unsigned long long>(res.mis.set_size));
  if (args.Has("out")) {
    s = WriteSetText(res.cover, args.Get("out"));
    if (!s.ok()) return Fail(s);
    std::printf("  members written to %s\n", args.Get("out").c_str());
  }
  return 0;
}

int CmdColor(const Args& args) {
  if (args.positional.size() != 1) return Usage();
  ColoringOptions opts;
  opts.max_mis_rounds =
      static_cast<uint32_t>(std::atoi(args.Get("mis-rounds", "8").c_str()));
  ColoringResult res;
  Status s = ComputeGreedyColoringFile(args.positional[0], opts, &res);
  if (!s.ok()) return Fail(s);
  uint64_t conflicts = 0;
  s = VerifyColoringFile(args.positional[0], res.color, &conflicts);
  if (!s.ok()) return Fail(s);
  std::printf("coloring: %u colors (%llu vertices via MIS rounds), "
              "verified %s\n",
              res.num_colors,
              static_cast<unsigned long long>(res.colored_by_mis),
              conflicts == 0 ? "proper" : "IMPROPER");
  return conflicts == 0 ? 0 : 1;
}

// Streaming parser of an update file (see the file comment for the
// format). Forward-only and O(1) memory, so `update` can consume streams
// far larger than RAM; errors carry the offending line number.
class UpdateStreamReader {
 public:
  ~UpdateStreamReader() {
    if (f_ != nullptr) std::fclose(f_);
  }

  Status Open(const std::string& path) {
    f_ = std::fopen(path.c_str(), "r");
    if (f_ == nullptr) {
      return Status::NotFound("cannot open update stream '" + path + "'");
    }
    path_ = path;
    return Status::OK();
  }

  /// Parses the next update; `*has_next` is false at end of file.
  Status Next(EdgeUpdate* update, bool* has_next) {
    std::string line;
    while (true) {
      bool eof = false;
      ReadLine(&line, &eof);
      if (eof && line.empty()) {
        *has_next = false;
        return Status::OK();
      }
      line_no_++;
      const char* p = line.c_str();
      while (*p == ' ' || *p == '\t') p++;
      if (*p == '\0' || *p == '#') continue;
      const char op = *p++;
      if (op != '+' && op != '-') {
        return LineError("expected '+' or '-'");
      }
      char* end = nullptr;
      unsigned long long u = std::strtoull(p, &end, 10);
      if (end == p) return LineError("missing vertex ids");
      p = end;
      unsigned long long v = std::strtoull(p, &end, 10);
      if (end == p) return LineError("missing second vertex id");
      if (u > 0xFFFFFFFFull || v > 0xFFFFFFFFull) {
        return LineError("vertex id does not fit 32 bits");
      }
      *update = (op == '+') ? EdgeUpdate::Insert(static_cast<VertexId>(u),
                                                 static_cast<VertexId>(v))
                            : EdgeUpdate::Delete(static_cast<VertexId>(u),
                                                 static_cast<VertexId>(v));
      *has_next = true;
      return Status::OK();
    }
  }

 private:
  // Reads one whole line of any length (newline stripped).
  void ReadLine(std::string* line, bool* eof) {
    line->clear();
    char chunk[256];
    while (std::fgets(chunk, sizeof(chunk), f_) != nullptr) {
      line->append(chunk);
      if (!line->empty() && line->back() == '\n') {
        line->pop_back();
        return;
      }
    }
    *eof = true;
  }

  Status LineError(const std::string& what) const {
    return Status::InvalidArgument("update stream '" + path_ + "' line " +
                                   std::to_string(line_no_) + ": " + what);
  }

  std::FILE* f_ = nullptr;
  std::string path_;
  uint64_t line_no_ = 0;
};

// Reads a one-id-per-line set file (the format WriteSetText emits) into a
// bit vector of `n` bits.
Status ReadSetText(const std::string& path, uint64_t n, BitVector* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::NotFound("cannot open set file '" + path + "'");
  }
  BitVector set(n);
  char line[64];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    char* end = nullptr;
    unsigned long long v = std::strtoull(line, &end, 10);
    if (end == line) continue;  // blank line
    if (v >= n) {
      std::fclose(f);
      return Status::InvalidArgument("set file '" + path +
                                     "' holds an out-of-range vertex id");
    }
    set.Set(static_cast<size_t>(v));
  }
  std::fclose(f);
  *out = std::move(set);
  return Status::OK();
}

// Degraded-store note next to the failure that tripped it: the session
// is aborting, but the store still serves its last published epoch and
// `fsck` will confirm it is clean -- worth saying out loud so an
// operator does not reach for a restore they do not need.
void NoteEngineDegraded(const MisEngine& engine) {
  if (!engine.read_only()) return;
  std::fprintf(stderr,
               "note: engine degraded to read-only; the last published "
               "epoch remains valid (%s)\n",
               engine.degraded_reason().ToString().c_str());
}

int CmdUpdate(const Args& args) {
  if (args.positional.size() != 1 || !args.Has("stream")) return Usage();
  const std::string input = args.positional[0];
  uint32_t num_shards = 0, num_threads = 0, batch = 0;
  if (!ParseCount(args.Get("shards", "8"), 1, kMaxAdjacencyShards,
                  &num_shards)) {
    std::fprintf(stderr, "error: --shards must be in [1, %u]\n",
                 kMaxAdjacencyShards);
    return 1;
  }
  if (!ParseCount(args.Get("threads", "1"), 0, 4096, &num_threads)) {
    std::fprintf(stderr, "error: --threads must be in [0, 4096]\n");
    return 1;
  }
  if (!ParseCount(args.Get("batch", "1024"), 1, 1 << 30, &batch)) {
    std::fprintf(stderr, "error: --batch must be a positive count\n");
    return 1;
  }
  const bool compact = args.Has("compact");
  const bool resort = args.Has("resort");
  if (args.Has("verify") && !compact) {
    std::fprintf(stderr,
                 "error: --verify needs --compact (verification scans the "
                 "base shards, so the delta must be folded in first)\n");
    return 1;
  }

  // A SADJS manifest is updated in place; a monolithic file is sharded
  // next to itself first. The choice is made on the file's magic -- a
  // file that CLAIMS to be a manifest but fails to parse must surface its
  // real diagnosis (e.g. a torn compaction), not fall through to a
  // misleading "not an adjacency file" from the sharder.
  std::string manifest_path = input;
  ShardedAdjacencyManifest manifest;
  const bool is_manifest = IsManifestFile(input);
  if (is_manifest) {
    Status s = ReadShardStoreManifest(input, &manifest);
    if (!s.ok()) return Fail(s);
  } else {
    manifest_path = input + ".sadjs";
    Status s = ShardAdjacencyFile(input, manifest_path, num_shards);
    if (!s.ok()) return Fail(s);
    s = ReadShardedAdjacencyManifest(manifest_path, &manifest);
    if (!s.ok()) return Fail(s);
    std::printf("sharded %s -> %s (%u shards)\n", input.c_str(),
                manifest_path.c_str(), manifest.num_shards());
  }

  // The GREEDY-quality trap: a compaction may have cleared the sorted
  // flag since the graph was sharded. The maintenance loop below is
  // order-insensitive, but the from-scratch initial solve is not.
  const bool opened_sorted = manifest.header.IsDegreeSorted();
  if (!opened_sorted) {
    WarnNotDegreeSorted(manifest_path,
                        resort ? "scheduled (runs after the stream)"
                               : kResortNotScheduled);
  }

  // The whole session runs on one resident engine: open (solve or adopt
  // a set) -> apply/repair per batch -> publish each repaired state as a
  // served epoch.
  MisEngineOptions eopts;
  eopts.degree_sort = manifest.header.IsDegreeSorted();
  eopts.swap = SwapMode::kNone;
  eopts.pipeline.num_threads = num_threads;
  // Auto-compaction defaults ON so the pending delta (in memory and on
  // disk) stays bounded no matter how long the stream runs; 0 disables.
  eopts.pipeline.compact_threshold_entries = std::strtoull(
      args.Get("compact-threshold", "65536").c_str(), nullptr, 10);
  // With --resort, every compaction that clears the degree-sorted flag
  // immediately restores it through the same epoch commit.
  eopts.pipeline.auto_resort = resort;
  MisEngine engine(eopts);
  if (args.Has("set")) {
    BitVector initial;
    Status s = ReadSetText(args.Get("set"), manifest.header.num_vertices,
                           &initial);
    if (!s.ok()) return Fail(s);
    s = engine.OpenSharded(manifest_path, initial);
    if (!s.ok()) return Fail(s);
  } else {
    Status s = engine.OpenSharded(manifest_path);
    if (!s.ok()) return Fail(s);
    std::printf("initial set: %llu vertices (sharded %s)\n",
                static_cast<unsigned long long>(
                    engine.open_result().set_size),
                eopts.degree_sort ? "greedy" : "baseline greedy");
  }
  // Bind the mutation arm now (and replay any previous session's
  // overlay) so init I/O is not charged to the first batch.
  Status s = engine.Prepare();
  if (!s.ok()) return Fail(s);

  UpdateStreamReader stream;
  s = stream.Open(args.Get("stream"));
  if (!s.ok()) return Fail(s);

  // Batched apply -> repair -> publish, the amortized maintenance loop.
  // The stream is parsed incrementally, one batch in memory at a time.
  std::vector<EdgeUpdate> batch_updates;
  batch_updates.reserve(batch);
  bool drained = false;
  while (!drained) {
    batch_updates.clear();
    while (batch_updates.size() < batch) {
      EdgeUpdate update;
      bool has_next = false;
      s = stream.Next(&update, &has_next);
      if (!s.ok()) return Fail(s);
      if (!has_next) {
        drained = true;
        break;
      }
      batch_updates.push_back(update);
    }
    if (batch_updates.empty()) break;
    s = engine.ApplyBatch(batch_updates);
    if (!s.ok()) {
      NoteEngineDegraded(engine);
      return Fail(s);
    }
    s = engine.Repair();
    if (!s.ok()) {
      NoteEngineDegraded(engine);
      return Fail(s);
    }
    engine.Publish();
  }
  if (compact) {
    s = engine.Compact(/*force=*/true);
    if (!s.ok()) {
      NoteEngineDegraded(engine);
      return Fail(s);
    }
  }
  if (resort) {
    // Covers a flag cleared before this session too, not only by this
    // session's compactions (which auto_resort already handled).
    s = engine.Resort();
    if (!s.ok()) {
      NoteEngineDegraded(engine);
      return Fail(s);
    }
  }
  // Surface whatever the last batch (or a replayed overlay) left behind.
  EpochSnapshotRef final_epoch = engine.Publish();

  const StreamingMisStats& st = *engine.streaming_stats();
  // Where the degree-sorted contract stands after the session, on stderr
  // next to the open-time warning it resolves (or renews).
  ShardedAdjacencyManifest now;
  s = ReadShardStoreManifest(manifest_path, &now);
  if (!s.ok()) return Fail(s);
  if (st.resorts > 0) {
    std::fprintf(stderr,
                 "note: background re-sort complete: %llu pass(es) in %.2fs; "
                 "degree-sorted order %s\n",
                 static_cast<unsigned long long>(st.resorts),
                 st.resort_seconds,
                 now.header.IsDegreeSorted() ? "restored" : "NOT restored");
  } else if (opened_sorted && !now.header.IsDegreeSorted()) {
    // A compaction cleared the flag during THIS session and nothing
    // restored it.
    WarnNotDegreeSorted(manifest_path, kResortNotScheduled);
  }
  std::printf("maintained set: %llu vertices after %llu updates\n",
              static_cast<unsigned long long>(final_epoch->set_size()),
              static_cast<unsigned long long>(st.updates_applied));
  std::printf("  %llu inserts, %llu deletes, %llu redundant, "
              "%llu evictions\n",
              static_cast<unsigned long long>(st.inserts),
              static_cast<unsigned long long>(st.deletes),
              static_cast<unsigned long long>(st.redundant_updates),
              static_cast<unsigned long long>(st.evictions));
  std::printf("  %llu repair passes re-added %llu vertices in %.2fs "
              "(apply %.2fs)\n",
              static_cast<unsigned long long>(st.repair_passes),
              static_cast<unsigned long long>(st.repair_added),
              st.repair_seconds, st.apply_seconds);
  std::printf("  %llu compactions rewrote %llu shards in %.2fs; "
              "%llu delta entries pending\n",
              static_cast<unsigned long long>(st.compactions),
              static_cast<unsigned long long>(st.shards_rewritten),
              st.compact_seconds,
              static_cast<unsigned long long>(st.pending_delta_entries));
  std::printf("  peak memory %s, %llu scans, %s read, %s written\n",
              MemoryTracker::FormatBytes(st.peak_memory_bytes).c_str(),
              static_cast<unsigned long long>(st.io.sequential_scans),
              MemoryTracker::FormatBytes(st.io.bytes_read).c_str(),
              MemoryTracker::FormatBytes(st.io.bytes_written).c_str());
  if (args.Has("stats")) {
    // Compact/resort may have changed the flag during THIS session;
    // report the manifest's current state, not the one we opened with.
    std::printf("  degree_sorted=%s\n",
                now.header.IsDegreeSorted() ? "true" : "false");
    const EpochStats& es = final_epoch->stats();
    std::printf("  epoch %llu: %llu batches, %llu updates, %llu repair "
                "passes re-added %llu (apply %.2fs, repair %.2fs)\n",
                static_cast<unsigned long long>(final_epoch->epoch()),
                static_cast<unsigned long long>(es.batches),
                static_cast<unsigned long long>(es.updates),
                static_cast<unsigned long long>(es.repair_passes),
                static_cast<unsigned long long>(es.repair_added),
                es.apply_seconds, es.repair_seconds);
  }

  if (args.Has("verify")) {
    VerifyResult vr;
    s = VerifyIndependentSetShardedFile(manifest_path, final_epoch->set(),
                                        &vr);
    if (!s.ok()) return Fail(s);
    if (!vr.independent || !vr.maximal) {
      std::fprintf(stderr, "error: maintained set is %s\n",
                   !vr.independent ? "not independent" : "not maximal");
      return 1;
    }
    std::printf("  verified independent + maximal\n");
  }
  if (args.Has("out")) {
    s = WriteSetText(final_epoch->set(), args.Get("out"));
    if (!s.ok()) return Fail(s);
    std::printf("  members written to %s\n", args.Get("out").c_str());
  }
  return 0;
}

// Drives a resident MisEngine through a scripted lifecycle session:
// open -> (queue updates | apply | repair | compact | publish | query)*.
// Queries are answered from the engine's CURRENT epoch snapshot, so a
// `query` between `repair` and `publish` still sees the previous epoch --
// exactly the reader contract the library documents. Output is one line
// per lifecycle verb, deterministic for a given script.
int CmdEngine(const Args& args) {
  if (args.positional.size() != 1 || !args.Has("script")) return Usage();
  MisEngineOptions opts;
  std::string algo = args.Get("algo", "twok");
  if (algo == "baseline") {
    opts.degree_sort = false;
    opts.swap = SwapMode::kNone;
  } else if (algo == "greedy") {
    opts.swap = SwapMode::kNone;
  } else if (algo == "onek") {
    opts.swap = SwapMode::kOneK;
  } else if (algo == "twok") {
    opts.swap = SwapMode::kTwoK;
  } else {
    return Usage();
  }
  opts.max_swap_rounds =
      static_cast<uint32_t>(std::atoi(args.Get("rounds", "0").c_str()));
  if (!ParseCount(args.Get("shards", "0"), 0, kMaxAdjacencyShards,
                  &opts.pipeline.num_shards)) {
    std::fprintf(stderr, "error: --shards must be in [0, %u]\n",
                 kMaxAdjacencyShards);
    return 1;
  }
  if (!ParseCount(args.Get("threads", "1"), 0, 4096,
                  &opts.pipeline.num_threads)) {
    std::fprintf(stderr, "error: --threads must be in [0, 4096]\n");
    return 1;
  }
  opts.pipeline.compact_threshold_entries = std::strtoull(
      args.Get("compact-threshold", "65536").c_str(), nullptr, 10);

  // Same degrade-loudly rule as `solve`: a manifest whose sorted flag was
  // cleared cannot run the sorted-order algorithms.
  if (IsManifestFile(args.positional[0]) && opts.degree_sort) {
    ShardedAdjacencyManifest manifest;
    Status ms = ReadShardStoreManifest(args.positional[0], &manifest);
    if (!ms.ok()) return Fail(ms);
    if (!manifest.header.IsDegreeSorted()) {
      WarnNotDegreeSorted(args.positional[0], kResortNotScheduled);
      opts.degree_sort = false;
    }
  }

  MisEngine engine(opts);
  Status s = engine.Open(args.positional[0]);
  if (!s.ok()) return Fail(s);
  {
    EpochSnapshotRef snap = engine.Snapshot();
    std::printf("opened %s: epoch %llu, %llu vertices in set\n",
                args.positional[0].c_str(),
                static_cast<unsigned long long>(snap->epoch()),
                static_cast<unsigned long long>(snap->set_size()));
  }

  std::FILE* f = std::fopen(args.Get("script").c_str(), "r");
  if (f == nullptr) {
    return Fail(Status::NotFound("cannot open session script '" +
                                 args.Get("script") + "'"));
  }
  auto script_error = [&](uint64_t line_no, const std::string& what) {
    std::fclose(f);
    return Fail(Status::InvalidArgument(
        "session script '" + args.Get("script") + "' line " +
        std::to_string(line_no) + ": " + what));
  };

  std::vector<EdgeUpdate> queued;
  uint64_t line_no = 0;
  std::string line;
  bool eof = false;
  while (!eof) {
    // Read one whole line of any length (newline stripped).
    line.clear();
    char chunk[256];
    bool got = false;
    while (std::fgets(chunk, sizeof(chunk), f) != nullptr) {
      got = true;
      line.append(chunk);
      if (!line.empty() && line.back() == '\n') {
        line.pop_back();
        break;
      }
    }
    if (!got) {
      eof = true;
      if (line.empty()) break;
    }
    line_no++;
    const char* p = line.c_str();
    while (*p == ' ' || *p == '\t') p++;
    if (*p == '\0' || *p == '#') continue;

    if (*p == '+' || *p == '-') {
      const char op = *p++;
      char* end = nullptr;
      unsigned long long u = std::strtoull(p, &end, 10);
      if (end == p) return script_error(line_no, "missing vertex ids");
      p = end;
      unsigned long long v = std::strtoull(p, &end, 10);
      if (end == p) return script_error(line_no, "missing second vertex id");
      if (u > 0xFFFFFFFFull || v > 0xFFFFFFFFull) {
        return script_error(line_no, "vertex id does not fit 32 bits");
      }
      queued.push_back(op == '+'
                           ? EdgeUpdate::Insert(static_cast<VertexId>(u),
                                                static_cast<VertexId>(v))
                           : EdgeUpdate::Delete(static_cast<VertexId>(u),
                                                static_cast<VertexId>(v)));
      continue;
    }

    // Verb = first whitespace-delimited word.
    const char* word_end = p;
    while (*word_end != '\0' && *word_end != ' ' && *word_end != '\t') {
      word_end++;
    }
    std::string verb(p, static_cast<size_t>(word_end - p));
    // A mutating verb that fails on a degraded (read-only) engine does
    // NOT abort the session: the whole point of degraded mode is that
    // reads keep working, so the script's queries and publishes run on,
    // the verb is reported as rejected, and the session exits 3 at the
    // end. Any other failure is a hard error as before.
    auto rejected_read_only = [&](const Status& st) {
      if (!engine.read_only()) return false;
      std::printf("%s rejected: engine is read-only\n", verb.c_str());
      std::fprintf(stderr, "note: %s\n", st.ToString().c_str());
      return true;
    };
    if (verb == "apply") {
      s = engine.ApplyBatch(queued);
      if (!s.ok()) {
        if (rejected_read_only(s)) {
          queued.clear();
          continue;
        }
        std::fclose(f);
        return Fail(s);
      }
      std::printf("applied %llu updates (staleness %llu)\n",
                  static_cast<unsigned long long>(queued.size()),
                  static_cast<unsigned long long>(engine.staleness()));
      queued.clear();
    } else if (verb == "repair") {
      s = engine.Repair();
      if (!s.ok()) {
        if (rejected_read_only(s)) continue;
        std::fclose(f);
        return Fail(s);
      }
      std::printf("repaired successor state\n");
    } else if (verb == "compact") {
      s = engine.Compact(/*force=*/true);
      if (!s.ok()) {
        if (rejected_read_only(s)) continue;
        std::fclose(f);
        return Fail(s);
      }
      std::printf("compacted pending delta\n");
    } else if (verb == "publish") {
      EpochSnapshotRef snap = engine.Publish();
      const EpochStats& es = snap->stats();
      std::printf("published epoch %llu: %llu vertices (%llu batches, "
                  "%llu updates, %llu repair passes re-added %llu)\n",
                  static_cast<unsigned long long>(snap->epoch()),
                  static_cast<unsigned long long>(snap->set_size()),
                  static_cast<unsigned long long>(es.batches),
                  static_cast<unsigned long long>(es.updates),
                  static_cast<unsigned long long>(es.repair_passes),
                  static_cast<unsigned long long>(es.repair_added));
    } else if (verb == "query") {
      EpochSnapshotRef snap = engine.Snapshot();
      std::printf("query (epoch %llu):",
                  static_cast<unsigned long long>(snap->epoch()));
      p = word_end;
      bool any = false;
      while (true) {
        char* end = nullptr;
        unsigned long long v = std::strtoull(p, &end, 10);
        if (end == p) break;
        p = end;
        any = true;
        if (v >= snap->set().size()) {
          std::printf(" %llu=out-of-range", v);
        } else {
          std::printf(" %llu=%s", v,
                      snap->Contains(static_cast<VertexId>(v)) ? "in"
                                                               : "out");
        }
      }
      std::printf("\n");
      if (!any) return script_error(line_no, "query needs vertex ids");
    } else {
      return script_error(line_no, "unknown verb '" + verb + "'");
    }
  }
  std::fclose(f);
  if (!queued.empty()) {
    std::fprintf(stderr,
                 "warning: %llu queued updates were never applied "
                 "(script ended without 'apply')\n",
                 static_cast<unsigned long long>(queued.size()));
  }

  EpochSnapshotRef final_snap = engine.Snapshot();
  std::printf("session end: epoch %llu, %llu vertices in set, "
              "staleness %llu%s\n",
              static_cast<unsigned long long>(final_snap->epoch()),
              static_cast<unsigned long long>(final_snap->set_size()),
              static_cast<unsigned long long>(engine.staleness()),
              engine.read_only() ? ", read-only" : "");
  if (args.Has("stats")) {
    std::printf("  degree_sorted=%s\n",
                engine.open_result().degree_sorted ? "true" : "false");
    if (engine.streaming_stats() != nullptr) {
      const StreamingMisStats& st = *engine.streaming_stats();
      std::printf("  session totals: %llu updates, %llu evictions, "
                  "%llu repair passes, %llu delta entries pending\n",
                  static_cast<unsigned long long>(st.updates_applied),
                  static_cast<unsigned long long>(st.evictions),
                  static_cast<unsigned long long>(st.repair_passes),
                  static_cast<unsigned long long>(st.pending_delta_entries));
    }
  }
  if (args.Has("out")) {
    s = WriteSetText(final_snap->set(), args.Get("out"));
    if (!s.ok()) return Fail(s);
    std::printf("  members written to %s\n", args.Get("out").c_str());
  }
  if (engine.read_only()) {
    std::fprintf(stderr, "error: engine degraded to read-only: %s\n",
                 engine.degraded_reason().ToString().c_str());
    return 3;  // served to the end, but the session lost its store
  }
  return 0;
}

// Inspects (and with --gc repairs) a sharded store: resolves the root --
// legacy SADM manifest or SEPR epoch root pointer -- validates the
// serving epoch, reports a fallback to the previous epoch, and lists
// files no live epoch references. --gc makes a fallback durable and
// removes the orphans; without it nothing is written.
int CmdFsck(const Args& args) {
  if (args.positional.size() != 1) return Usage();
  const std::string root = args.positional[0];
  ResolvedShardStore store;
  ShardStoreRecovery recovery;
  Status s = args.Has("gc") ? RecoverShardStore(root, &store, &recovery)
                            : ResolveShardStore(root, &store);
  if (!s.ok()) return Fail(s);
  if (store.journaled) {
    std::printf("journaled store %s: serving epoch %llu", root.c_str(),
                static_cast<unsigned long long>(store.current_epoch));
    if (store.previous_epoch != 0) {
      std::printf(" (previous %llu kept for readers)",
                  static_cast<unsigned long long>(store.previous_epoch));
    }
    std::printf("\n");
  } else {
    std::printf("legacy store %s (journals on its first compaction)\n",
                root.c_str());
  }
  if (store.fell_back || recovery.fell_back) {
    std::printf("  recovered: current epoch failed validation, fell back "
                "to epoch %llu%s\n",
                static_cast<unsigned long long>(store.current_epoch),
                args.Has("gc") ? " (made durable)" : " (read-only; --gc "
                                                     "makes it durable)");
  }
  ShardedAdjacencyManifest manifest;
  s = ReadShardedAdjacencyManifest(store.manifest_path, &manifest);
  if (!s.ok()) return Fail(s);
  std::printf("  manifest %s: %llu vertices, %llu directed edges, "
              "%u shards, degree_sorted=%s\n",
              store.manifest_path.c_str(),
              static_cast<unsigned long long>(manifest.header.num_vertices),
              static_cast<unsigned long long>(
                  manifest.header.num_directed_edges),
              manifest.num_shards(),
              manifest.header.IsDegreeSorted() ? "true" : "false");
  if (args.Has("gc")) {
    std::printf("  gc: removed %llu orphaned file(s)\n",
                static_cast<unsigned long long>(
                    recovery.orphan_files_removed));
  }
  std::vector<std::string> orphans;
  s = ListShardStoreOrphans(store, &orphans);
  if (!s.ok()) return Fail(s);
  if (orphans.empty()) {
    std::printf("  no orphaned files\n");
  } else {
    std::printf("  %zu orphaned file(s)%s:\n", orphans.size(),
                args.Has("gc") ? "" : " (remove with --gc)");
    for (const std::string& path : orphans) {
      std::printf("    %s\n", path.c_str());
    }
  }
  return 0;
}

int CmdUnshard(const Args& args) {
  if (args.positional.size() != 2) return Usage();
  IoStats io;
  ShardedAdjacencyScanner scanner(&io);
  Status s = scanner.Open(args.positional[0]);
  if (!s.ok()) return Fail(s);
  const AdjacencyFileHeader& h = scanner.header();
  AdjacencyFileWriter writer(&io);
  s = writer.Open(args.positional[1], h.num_vertices, h.num_directed_edges,
                  h.max_degree, h.flags);
  if (!s.ok()) return Fail(s);
  VertexRecordView rec;
  bool has_next = false;
  while (true) {
    s = scanner.Next(&rec, &has_next);
    if (!s.ok()) return Fail(s);
    if (!has_next) break;
    s = writer.AppendVertex(rec.id, rec.neighbors, rec.degree);
    if (!s.ok()) return Fail(s);
  }
  s = writer.Finish();
  if (!s.ok()) return Fail(s);
  std::printf("unsharded %s -> %s (%llu vertices, %s written)\n",
              args.positional[0].c_str(), args.positional[1].c_str(),
              static_cast<unsigned long long>(h.num_vertices),
              MemoryTracker::FormatBytes(io.bytes_written).c_str());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    PrintUsage(stdout);
    return 0;
  }
  Args args = Args::Parse(argc, argv, 2);
  if (args.help) {
    PrintUsage(stdout);
    return 0;
  }
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "convert") return CmdConvert(args);
  if (cmd == "sort") return CmdSort(args);
  if (cmd == "shard") return CmdShard(args);
  if (cmd == "stats") return CmdStats(args);
  if (cmd == "bound") return CmdBound(args);
  if (cmd == "solve") return CmdSolve(args);
  if (cmd == "cover") return CmdCover(args);
  if (cmd == "color") return CmdColor(args);
  if (cmd == "update") return CmdUpdate(args);
  if (cmd == "engine") return CmdEngine(args);
  if (cmd == "unshard") return CmdUnshard(args);
  if (cmd == "fsck") return CmdFsck(args);
  return Usage();
}

}  // namespace
}  // namespace cli
}  // namespace semis

int main(int argc, char** argv) { return semis::cli::Main(argc, argv); }
