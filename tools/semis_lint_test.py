#!/usr/bin/env python3
# Copyright (c) the semis authors.
"""Unit tests for semis_lint.py (run directly or via ctest)."""

import os
import shutil
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import semis_lint  # noqa: E402


class LintTestBase(unittest.TestCase):
    def setUp(self):
        self.root = tempfile.mkdtemp(prefix="semis_lint_test.")

    def tearDown(self):
        shutil.rmtree(self.root, ignore_errors=True)

    def write(self, rel_path, content):
        abs_path = os.path.join(self.root, rel_path)
        os.makedirs(os.path.dirname(abs_path), exist_ok=True)
        with open(abs_path, "w", encoding="utf-8") as f:
            f.write(content)
        return abs_path

    def lint(self, rel_path):
        abs_path = os.path.join(self.root, rel_path)
        return semis_lint.lint_file(abs_path, rel_path)

    def rules(self, rel_path):
        return [f.rule for f in self.lint(rel_path)]


class UnorderedIterationTest(LintTestBase):
    CODE = """
#include <unordered_map>
struct Foo {
  std::unordered_map<int, int> counts_;
  int Sum() {
    int total = 0;
    for (const auto& kv : counts_) total += kv.second;
    return total;
  }
};
"""

    def test_flags_range_for_in_core(self):
        self.write("src/core/foo.cc", self.CODE)
        findings = self.lint("src/core/foo.cc")
        self.assertEqual([f.rule for f in findings], ["unordered-iteration"])
        self.assertEqual(findings[0].line, 7)

    def test_not_flagged_outside_core(self):
        self.write("src/util/foo.cc", self.CODE)
        self.assertEqual(self.rules("src/util/foo.cc"), [])

    def test_vector_iteration_clean(self):
        self.write("src/core/foo.cc", """
#include <vector>
#include <unordered_set>
std::unordered_set<int> seen;
void F(const std::vector<int>& items) {
  for (int x : items) { seen.insert(x); }
}
""")
        self.assertEqual(self.rules("src/core/foo.cc"), [])

    def test_classic_for_with_unordered_in_body_clean(self):
        # A three-clause for whose BODY touches an unordered container is
        # fine; only iterating the container itself is order-dependent.
        self.write("src/core/foo.cc", """
#include <unordered_set>
std::unordered_set<int> seen;
void F(int n) {
  for (int i = 0; i < n; ++i) { seen.insert(i); }
}
""")
        self.assertEqual(self.rules("src/core/foo.cc"), [])

    def test_multiline_header_and_nested_template(self):
        self.write("src/core/foo.cc", """
#include <unordered_map>
#include <utility>
#include <vector>
std::unordered_map<int, std::pair<int, int>> pairs_;
int Sum() {
  int t = 0;
  for (const std::pair<const int, std::pair<int, int>>& kv :
       pairs_) {
    t += kv.second.first;
  }
  return t;
}
""")
        self.assertEqual(self.rules("src/core/foo.cc"),
                         ["unordered-iteration"])

    def test_suppression_same_line(self):
        self.write("src/core/foo.cc", """
#include <unordered_map>
std::unordered_map<int, int> m_;
int Sum() {
  int t = 0;
  for (const auto& kv : m_) t += kv.second;  // semis-lint: allow(unordered-iteration)
  return t;
}
""")
        self.assertEqual(self.rules("src/core/foo.cc"), [])

    def test_suppression_previous_line(self):
        self.write("src/core/foo.cc", """
#include <unordered_map>
std::unordered_map<int, int> m_;
int Sum() {
  int t = 0;
  // semis-lint: allow(unordered-iteration)
  for (const auto& kv : m_) t += kv.second;
  return t;
}
""")
        self.assertEqual(self.rules("src/core/foo.cc"), [])

    def test_suppression_wrong_rule_does_not_apply(self):
        self.write("src/core/foo.cc", """
#include <unordered_map>
std::unordered_map<int, int> m_;
int Sum() {
  int t = 0;
  // semis-lint: allow(raw-random)
  for (const auto& kv : m_) t += kv.second;
  return t;
}
""")
        self.assertEqual(self.rules("src/core/foo.cc"),
                         ["unordered-iteration"])


class RawRandomTest(LintTestBase):
    def test_rand_flagged_everywhere_in_src(self):
        self.write("src/util/foo.cc", "int F() { return rand(); }\n")
        self.assertEqual(self.rules("src/util/foo.cc"), ["raw-random"])

    def test_random_device_flagged(self):
        self.write("src/core/foo.cc",
                   "#include <random>\nstd::random_device rd;\n")
        self.assertEqual(self.rules("src/core/foo.cc"), ["raw-random"])

    def test_random_h_exempt(self):
        self.write("src/util/random.h",
                   "inline unsigned Seed() { return rand(); }\n")
        self.assertEqual(self.rules("src/util/random.h"), [])

    def test_identifier_containing_rand_clean(self):
        self.write("src/core/foo.cc",
                   "int operand(int x);\nint F() { return operand(3); }\n")
        self.assertEqual(self.rules("src/core/foo.cc"), [])


class WallClockTest(LintTestBase):
    def test_chrono_now_flagged_in_core(self):
        self.write("src/core/foo.cc", """
#include <chrono>
long F() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
""")
        self.assertEqual(self.rules("src/core/foo.cc"), ["wall-clock"])

    def test_time_nullptr_flagged(self):
        self.write("src/graph/foo.cc",
                   "#include <ctime>\nlong F() { return time(nullptr); }\n")
        self.assertEqual(self.rules("src/graph/foo.cc"), ["wall-clock"])

    def test_timer_use_outside_core_clean(self):
        self.write("src/util/timer.cc", """
#include <chrono>
long Now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
""")
        self.assertEqual(self.rules("src/util/timer.cc"), [])


class PointerTiebreakTest(LintTestBase):
    def test_reinterpret_cast_uintptr_flagged(self):
        self.write("src/core/foo.cc", """
#include <cstdint>
bool Less(const int* a, const int* b) {
  return reinterpret_cast<uintptr_t>(a) < reinterpret_cast<uintptr_t>(b);
}
""")
        self.assertEqual(self.rules("src/core/foo.cc"),
                         ["pointer-tiebreak", "pointer-tiebreak"])

    def test_std_less_pointer_flagged(self):
        self.write("src/core/foo.cc", """
#include <functional>
#include <map>
std::map<int*, int, std::less<int*>> m;
""")
        self.assertEqual(self.rules("src/core/foo.cc"),
                         ["pointer-tiebreak"])

    def test_value_cast_clean(self):
        self.write("src/core/foo.cc", """
#include <cstdint>
uint64_t F(double d) { return static_cast<uint64_t>(d); }
""")
        self.assertEqual(self.rules("src/core/foo.cc"), [])


class RawIoTest(LintTestBase):
    def test_fopen_flagged_anywhere_in_src(self):
        self.write("src/core/foo.cc",
                   '#include <cstdio>\nvoid F() { fopen("x", "r"); }\n')
        self.assertEqual(self.rules("src/core/foo.cc"), ["raw-io"])

    def test_qualified_open_and_fsync_flagged(self):
        self.write("src/graph/foo.cc", """
#include <fcntl.h>
#include <unistd.h>
void F() {
  int fd = ::open("x", O_RDONLY);
  ::fsync(fd);
}
""")
        self.assertEqual(self.rules("src/graph/foo.cc"),
                         ["raw-io", "raw-io"])

    def test_std_rename_and_filesystem_flagged(self):
        self.write("src/util/foo.cc", """
#include <cstdio>
#include <filesystem>
void F() {
  std::rename("a", "b");
  std::filesystem::remove_all("dir");
}
""")
        self.assertEqual(self.rules("src/util/foo.cc"),
                         ["raw-io", "raw-io"])

    def test_env_cc_exempt(self):
        self.write("src/io/env.cc",
                   '#include <cstdio>\nvoid F() { fopen("x", "r"); }\n')
        self.assertEqual(self.rules("src/io/env.cc"), [])

    def test_seam_wrappers_clean(self):
        # CamelCase seam methods and namespaced wrappers must not match.
        self.write("src/core/foo.cc", """
#include "io/file.h"
semis::Status F(semis::SequentialFileWriter* w) {
  auto s = w->Open("x");
  if (!s.ok()) return s;
  return semis::RenameFile("a", "b");
}
""")
        self.assertEqual(self.rules("src/core/foo.cc"), [])

    def test_member_open_clean(self):
        self.write("src/core/foo.cc", """
#include <fstream>
void F(std::ifstream& in, std::ifstream* pin) {
  in.open("x");
  pin->open("y");
}
""")
        self.assertEqual(self.rules("src/core/foo.cc"), [])

    def test_suppression_applies(self):
        self.write("src/core/foo.cc", """
#include <cstdio>
// semis-lint: allow(raw-io)
void F() { fopen("x", "r"); }
""")
        self.assertEqual(self.rules("src/core/foo.cc"), [])


class CommentAndStringStrippingTest(LintTestBase):
    def test_mentions_in_comments_and_strings_clean(self):
        self.write("src/core/foo.cc", """
// rand() in a comment is fine, as is std::random_device.
/* for (auto& kv : some_unordered_map_) {} */
const char* kMsg = "call rand() then time(nullptr)";
""")
        self.assertEqual(self.rules("src/core/foo.cc"), [])

    def test_line_numbers_survive_block_comments(self):
        self.write("src/core/foo.cc", """/* multi
line
comment */
int F() { return rand(); }
""")
        findings = self.lint("src/core/foo.cc")
        self.assertEqual(findings[0].line, 4)


class CliTest(LintTestBase):
    def test_exit_codes(self):
        self.write("src/core/clean.cc", "int F() { return 1; }\n")
        self.assertEqual(semis_lint.main(["--root", self.root, "src"]), 0)
        self.write("src/core/dirty.cc", "int F() { return rand(); }\n")
        self.assertEqual(semis_lint.main(["--root", self.root, "src"]), 1)
        self.assertEqual(
            semis_lint.main(["--root", self.root, "no/such/dir"]), 2)

    def test_single_file_argument(self):
        path = self.write("src/core/dirty.cc", "int F() { return rand(); }\n")
        self.assertEqual(semis_lint.main(["--root", self.root, path]), 1)


if __name__ == "__main__":
    unittest.main()
