#!/usr/bin/env python3
"""Diff two google-benchmark JSON captures and flag timing regressions.

Used by the `bench-diff` job of .github/workflows/nightly-bench.yml to
compare tonight's BENCH_*.json capture against the previous successful
run's artifact (or, when none exists yet, against the committed
bench/BENCH_baseline.json seed, in advisory mode).

  bench_diff.py --baseline PATH --current PATH [--threshold 0.20]
                [--mem-threshold 0.25] [--advisory] [--summary FILE]

PATH may be a single JSON file or a directory; directories are searched
recursively for *.json files and every file's "benchmarks" array is
pooled. Benchmarks are keyed by run name (e.g. "BM_ParallelGreedy/4/
real_time"); when a capture was taken with --benchmark_repetitions the
median aggregate is preferred, then the mean, then the raw iteration.

Besides real_time, memory/allocation counters attached to a benchmark
(names ending in "_bytes" -- peak_buffered_bytes, arena_bytes,
peak_memory_bytes -- or starting with "allocs") are diffed with their own
ADVISORY threshold (--mem-threshold): growth past it emits a ::warning
annotation and a summary row but never fails the gate, since byte
high-water marks are configuration-sensitive in a way wall time is not.

Exit status: 1 when any benchmark present on both sides regressed by more
than --threshold (relative real_time), 0 otherwise. --advisory always
exits 0 (used when the baseline is the committed seed, whose absolute
numbers come from different hardware). Emits GitHub workflow annotations
(::error / ::notice / ::warning) and, with --summary (defaulting to
$GITHUB_STEP_SUMMARY), a markdown table.
"""

import argparse
import json
import os
import sys
from pathlib import Path

_TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# Aggregate preference: lower rank wins for the same run name.
_KIND_RANK = {"median": 0, "mean": 1, "raw": 2}

# Keys of a benchmark entry that are bookkeeping, not user counters.
_RESERVED_KEYS = {
    "name", "run_name", "run_type", "family_index", "per_family_instance_index",
    "repetitions", "repetition_index", "threads", "iterations", "real_time",
    "cpu_time", "time_unit", "aggregate_name", "aggregate_unit", "label",
    "error_occurred", "error_message", "items_per_second", "bytes_per_second",
}


def is_memory_counter(key):
    """True for the counters the memory gate watches: byte high-water
    marks and allocation counts."""
    return key.endswith("_bytes") or key.startswith("allocs")


def collect_files(path):
    """Yields JSON files under `path` (a file, or a directory searched
    recursively -- artifact downloads nest captures one directory deep)."""
    p = Path(path)
    if p.is_file():
        yield p
        return
    if p.is_dir():
        yield from sorted(p.rglob("*.json"))
        return
    raise FileNotFoundError(f"no such file or directory: {path}")


def load_benchmarks(path):
    """Returns ({run_name: real_time_ns}, {errored run_name},
    {run_name: {counter: value}}) pooled over every capture file. Errored
    entries (e.g. a SkipWithError from the in-loop determinism assertions)
    are reported separately so the gate can fail on them -- the binary
    itself still exits 0. The third map holds the memory/allocation
    counters (is_memory_counter) of the preferred aggregate."""
    chosen = {}  # name -> (rank, time_ns, {counter: value})
    errored = set()
    for file in collect_files(path):
        try:
            with open(file, "r", encoding="utf-8") as f:
                doc = json.load(f)
        except (json.JSONDecodeError, OSError) as e:
            print(f"::warning::bench_diff: skipping unreadable {file}: {e}")
            continue
        for entry in doc.get("benchmarks", []):
            if entry.get("error_occurred"):
                errored.add(entry.get("run_name") or entry.get("name"))
                continue
            name = entry.get("run_name") or entry.get("name")
            if name is None or "real_time" not in entry:
                continue
            kind = (entry.get("aggregate_name", "raw")
                    if entry.get("run_type") == "aggregate" else "raw")
            if kind not in _KIND_RANK:
                continue  # stddev/cv/min/max are not timings to compare
            unit = _TIME_UNIT_NS.get(entry.get("time_unit", "ns"))
            if unit is None:
                continue
            time_ns = float(entry["real_time"]) * unit
            counters = {
                key: float(value)
                for key, value in entry.items()
                if key not in _RESERVED_KEYS and is_memory_counter(key)
                and isinstance(value, (int, float))
            }
            rank = _KIND_RANK[kind]
            prev = chosen.get(name)
            if prev is None or rank < prev[0]:
                chosen[name] = (rank, time_ns, counters)
    times = {name: t for name, (_, t, _) in chosen.items()}
    counters = {name: c for name, (_, _, c) in chosen.items() if c}
    return times, errored, counters


def format_ms(ns):
    return f"{ns / 1e6:.3f}ms"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="previous capture: JSON file or directory")
    parser.add_argument("--current", required=True,
                        help="new capture: JSON file or directory")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative real_time increase that fails the "
                             "run (default 0.20 = 20%%)")
    parser.add_argument("--mem-threshold", type=float, default=0.25,
                        help="relative growth of a memory/allocation "
                             "counter (*_bytes, allocs*) that emits an "
                             "advisory warning (default 0.25 = 25%%); "
                             "never fails the run")
    parser.add_argument("--advisory", action="store_true",
                        help="annotate but always exit 0 (seed baselines "
                             "from different hardware)")
    parser.add_argument("--summary",
                        default=os.environ.get("GITHUB_STEP_SUMMARY"),
                        help="markdown summary file (default: "
                             "$GITHUB_STEP_SUMMARY)")
    args = parser.parse_args()

    baseline, _, baseline_mem = load_benchmarks(args.baseline)
    current, current_errors, current_mem = load_benchmarks(args.current)
    if not baseline:
        print(f"::warning::bench_diff: no benchmarks in baseline "
              f"{args.baseline}")
    if not current:
        print(f"::error::bench_diff: no benchmarks in current capture "
              f"{args.current}")
        return 0 if args.advisory else 1

    shared = sorted(set(baseline) & set(current))
    only_old = sorted(set(baseline) - set(current))
    only_new = sorted(set(current) - set(baseline))

    rows = []
    regressions = []
    for name in shared:
        old, new = baseline[name], current[name]
        delta = (new - old) / old if old > 0 else 0.0
        status = "ok"
        if delta > args.threshold:
            status = "REGRESSION"
            regressions.append((name, old, new, delta))
        elif delta < -args.threshold:
            status = "improved"
        rows.append((name, old, new, delta, status))

    for name, old, new, delta, status in rows:
        line = (f"{name}: {format_ms(old)} -> {format_ms(new)} "
                f"({delta:+.1%})")
        if status == "REGRESSION":
            print(f"::error::bench regression: {line} exceeds "
                  f"{args.threshold:.0%} threshold")
        elif status == "improved":
            print(f"::notice::bench improvement: {line}")
        else:
            print(f"bench_diff: {line}")
    # An added benchmark is invisible to the regression gate until the
    # next night anchors it -- announce it loudly instead of burying it
    # in the log, so a rename (one added + one removed) reads as a pair.
    for name in only_new:
        print(f"::warning::bench_diff: benchmark added: {name} "
              f"({format_ms(current[name])}, no baseline to diff against)")

    # Memory/allocation counters: advisory only. Byte high-water marks and
    # allocation counts move with configuration (ring budgets, pool sizes)
    # rather than hardware noise, so growth is worth a loud warning -- but
    # they must not wedge the nightly gate the way a timing regression
    # does.
    mem_rows = []
    for name in shared:
        old_counters = baseline_mem.get(name, {})
        new_counters = current_mem.get(name, {})
        for key in sorted(set(old_counters) & set(new_counters)):
            old, new = old_counters[key], new_counters[key]
            if old == 0 and new == 0:
                continue
            delta = (new - old) / old if old > 0 else float("inf")
            flagged = delta > args.mem_threshold
            mem_rows.append((name, key, old, new, delta, flagged))
            if flagged:
                grew = (f"{old:,.3g} -> {new:,.3g}" if old > 0
                        else f"0 -> {new:,.3g}")
                print(f"::warning::bench memory growth: {name} {key}: "
                      f"{grew} exceeds {args.mem_threshold:.0%} advisory "
                      f"threshold")
    # An errored or vanished benchmark is a gate failure, not a skip: the
    # in-loop determinism assertions surface exactly this way, and a
    # silently dropped benchmark would read as "no regression".
    failures = len(regressions)
    for name in sorted(current_errors):
        print(f"::error::bench_diff: {name} reported an error "
              f"(SkipWithError) in tonight's capture")
        failures += 1
    missing = [name for name in only_old if name not in current_errors]
    for name in missing:
        print(f"::error::bench_diff: {name} disappeared from the capture "
              f"(present in baseline)")
        failures += 1

    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as f:
            f.write("## bench-diff\n\n")
            mode = " (advisory: seed baseline)" if args.advisory else ""
            f.write(f"{len(shared)} benchmarks compared, "
                    f"{len(regressions)} regressions over "
                    f"{args.threshold:.0%}{mode}.\n\n")
            f.write("| benchmark | baseline | current | delta | |\n")
            f.write("|---|---:|---:|---:|---|\n")
            for name, old, new, delta, status in rows:
                marker = {"REGRESSION": "🔺", "improved": "✅"}.get(status, "")
                f.write(f"| `{name}` | {format_ms(old)} | {format_ms(new)} "
                        f"| {delta:+.1%} | {marker} |\n")
            for name in only_new:
                f.write(f"| `{name}` | — | {format_ms(current[name])} "
                        f"| new | |\n")
            if only_new or missing:
                f.write("\n### added / removed benchmarks\n\n")
                f.write("Renames show up as one added + one removed row; "
                        "a removal fails the gate until a rebaseline "
                        "dispatch acknowledges it.\n\n")
                for name in only_new:
                    f.write(f"- ➕ added: `{name}` "
                            f"({format_ms(current[name])}, no baseline)\n")
                for name in missing:
                    f.write(f"- ❌ removed: `{name}` (present in baseline, "
                            f"missing from tonight's capture)\n")
            flagged_mem = [row for row in mem_rows if row[5]]
            if flagged_mem:
                f.write("\n### memory/allocation counters (advisory, "
                        f"threshold {args.mem_threshold:.0%})\n\n")
                f.write("| benchmark | counter | baseline | current "
                        "| delta |\n")
                f.write("|---|---|---:|---:|---:|\n")
                for name, key, old, new, delta, _ in flagged_mem:
                    shown = ("∞" if delta == float("inf")
                             else f"{delta:+.1%}")
                    f.write(f"| `{name}` | `{key}` | {old:,.3g} "
                            f"| {new:,.3g} | {shown} |\n")

    if failures and not args.advisory:
        print(f"bench_diff: FAIL — {len(regressions)} regression(s) over "
              f"{args.threshold:.0%}, {len(current_errors)} errored, "
              f"{len(missing)} missing", file=sys.stderr)
        return 1
    print("bench_diff: OK" + (" (advisory)" if args.advisory else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
