#!/usr/bin/env python3
# Copyright (c) the semis authors.
"""Determinism lint for the semis codebase.

The repo's standing contract is byte-identical output at every shard and
thread count.  This checker forbids the constructs that historically break
that contract, before they reach a differential test:

  unordered-iteration  Range-for over a std::unordered_{map,set,multimap,
                       multiset} in src/core or src/graph.  Hash-table
                       iteration order is libstdc++-version- and
                       pointer-dependent; anything it feeds into output or
                       commit order is nondeterministic.
  raw-random           rand()/srand()/random()/drand48()/std::random_device
                       anywhere under src/ except src/util/random.h.  All
                       randomness must flow through the seeded xoshiro256**
                       in util/random.h so runs are reproducible.
  wall-clock           std::chrono ::now(), time(nullptr), gettimeofday,
                       clock() in src/core or src/graph.  Deterministic
                       paths must not read the clock; timing belongs in
                       util/timer.h and the bench layer.
  pointer-tiebreak     reinterpret_cast<uintptr_t/intptr_t/size_t>(ptr) or
                       std::less<T*> in src/core or src/graph.  Pointer
                       values vary across runs (ASLR, allocator state);
                       they must never break ties.
  raw-io               Direct OS file I/O (fopen/::open/fsync/rename/
                       unlink/mkdtemp/std::filesystem, ...) anywhere under
                       src/ except src/io/env.cc and src/io/file.cc.  All
                       file-system access must route through the FileSystem
                       seam in io/env.h so fault injection (SEMIS_FAULT_SPEC)
                       and the retry policy see every operation.

A finding on line N is suppressed by `// semis-lint: allow(<rule>)` on
line N or line N-1.  Use a suppression only with a justification comment:
the sanctioned cases are order-insensitive reductions (e.g. summing bytes
over a map for memory accounting).

Usage:  semis_lint.py [--root DIR] [paths...]

Paths default to src/ under the root.  Directories are walked for
.h/.cc/.cpp files.  Exit status: 0 clean, 1 findings, 2 usage error.
"""

import argparse
import os
import re
import sys

RULES = (
    "unordered-iteration",
    "raw-random",
    "wall-clock",
    "pointer-tiebreak",
    "raw-io",
)

# Rules that only apply inside the deterministic core.  raw-random and
# raw-io apply to all of src/ (a seeded run must be reproducible end to
# end, and every file-system call must be fault-injectable).
CORE_ONLY_RULES = {"unordered-iteration", "wall-clock", "pointer-tiebreak"}
CORE_DIRS = ("src/core", "src/graph")
RANDOM_EXEMPT = "src/util/random.h"
# The posix implementation of the FileSystem seam is the one place raw OS
# calls are allowed (file.cc is exempt for historical call sites; it is
# clean today and routes through io/env.h).
RAW_IO_EXEMPT = ("src/io/env.cc", "src/io/file.cc")

SUPPRESS_RE = re.compile(r"//\s*semis-lint:\s*allow\(([a-z-]+)\)")

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<"
)
FOR_HEAD_RE = re.compile(r"\bfor\s*\(")
IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

RAW_RANDOM_RE = re.compile(
    r"\b(?:s?rand|random|drand48)\s*\(|\brandom_device\b"
)
WALL_CLOCK_RE = re.compile(
    r"::now\s*\(\s*\)|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"
    r"|\bgettimeofday\s*\(|\bclock\s*\(\s*\)"
)
POINTER_TIEBREAK_RE = re.compile(
    r"\breinterpret_cast\s*<\s*(?:std::)?(?:u?intptr_t|size_t)\s*>"
    r"|\bstd::less\s*<[^<>;]*\*\s*>"
)

# Unqualified C-library / posix calls.  The lookbehind rejects member calls
# (`f.open(`, `f->open(`), identifiers that merely end in a name
# (`Reopen(`), and qualified names (those are matched by RAW_IO_QUAL_RE so
# wrapper namespaces like `semis::RenameFile` never match).  Case matters:
# the repo's own seam methods are CamelCase (`Open`, `RenameFile`).
RAW_IO_CALL_RE = re.compile(
    r"(?<![A-Za-z0-9_.>:])"
    r"(?:fopen|fdopen|freopen|open|openat|creat|fsync|fdatasync|"
    r"rename|renameat|link|linkat|unlink|unlinkat|remove|"
    r"mkdtemp|mkstemp|mkdir|rmdir)"
    r"\s*\("
)
# `::`-qualified forms (`::open(`, `std::rename(`) plus any use of
# std::filesystem, which bypasses the seam wholesale.
RAW_IO_QUAL_RE = re.compile(
    r"::\s*(?:fopen|open|openat|fsync|fdatasync|rename|link|unlink|"
    r"remove|mkdtemp|mkstemp)\s*\("
    r"|::\s*filesystem\b"
)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving newlines.

    Keeps line structure intact so findings report real line numbers.
    AST-light: no preprocessor awareness, which is fine for this codebase
    (no string-pasting macro tricks in the linted trees).
    """
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def collect_suppressions(text):
    """Maps rule -> set of line numbers where a finding is allowed."""
    allowed = {rule: set() for rule in RULES}
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in SUPPRESS_RE.finditer(line):
            rule = match.group(1)
            if rule not in allowed:
                sys.stderr.write(
                    "warning: unknown semis-lint rule in suppression: "
                    "%s (line %d)\n" % (rule, lineno))
                continue
            # The suppression covers its own line and the next one, so it
            # can sit on the line above a long statement.
            allowed[rule].add(lineno)
            allowed[rule].add(lineno + 1)
    return allowed


def unordered_names(code):
    """Identifiers declared with an unordered container type in this file.

    Heuristic: after a `unordered_xxx<...>` type, the declared name is the
    next identifier past the matching `>`.  Good enough for the repo's
    declaration style (one declarator per line, no function-pointer
    contortions).
    """
    names = set()
    for match in UNORDERED_DECL_RE.finditer(code):
        depth = 1
        i = match.end()
        n = len(code)
        while i < n and depth > 0:
            if code[i] == "<":
                depth += 1
            elif code[i] == ">":
                depth -= 1
            i += 1
        tail = code[i:i + 200]
        ident = IDENT_RE.search(tail)
        if ident and tail[:ident.start()].strip() in ("", "&", "*", "const"):
            names.add(ident.group(0))
    return names


def line_of(code, offset):
    return code.count("\n", 0, offset) + 1


def range_for_exprs(code):
    """Yields (offset, range_expr) for each range-based for loop.

    Walks to the matching close paren of each `for (` and splits on the
    top-level `:` (ignoring `::`); classic three-clause for loops have a
    top-level `;` and are skipped.  Handles multi-line headers and parens
    or templates inside the range expression.
    """
    for match in FOR_HEAD_RE.finditer(code):
        start = match.end()
        depth = 1
        i = start
        n = len(code)
        colon = -1
        is_classic = False
        while i < n and depth > 0:
            c = code[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
            elif depth == 1 and c == ";":
                is_classic = True
                break
            elif depth == 1 and c == ":" and colon < 0:
                if code[i - 1] == ":" or (i + 1 < n and code[i + 1] == ":"):
                    i += 2
                    continue
                colon = i
            i += 1
        if is_classic or colon < 0:
            continue
        end = i - 1  # position of the closing paren
        yield match.start(), code[colon + 1:end]


def check_unordered_iteration(path, code, findings):
    names = unordered_names(code)
    if not names:
        return
    for offset, range_expr in range_for_exprs(code):
        for ident in IDENT_RE.findall(range_expr):
            if ident in names:
                findings.append(Finding(
                    path, line_of(code, offset),
                    "unordered-iteration",
                    "range-for over unordered container '%s'; iteration "
                    "order is not deterministic" % ident))
                break


def check_regex_rule(path, code, rule, regex, message, findings):
    for match in regex.finditer(code):
        findings.append(Finding(path, line_of(code, match.start()), rule,
                                message))


def is_under(rel, prefixes):
    rel = rel.replace(os.sep, "/")
    return any(rel == p or rel.startswith(p + "/") for p in prefixes)


def lint_file(abs_path, rel_path):
    with open(abs_path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    allowed = collect_suppressions(text)
    code = strip_comments_and_strings(text)
    findings = []

    in_core = is_under(rel_path, CORE_DIRS)
    if in_core:
        check_unordered_iteration(rel_path, code, findings)
        check_regex_rule(
            rel_path, code, "wall-clock", WALL_CLOCK_RE,
            "clock read in a deterministic path; use util/timer.h from "
            "the bench layer instead", findings)
        check_regex_rule(
            rel_path, code, "pointer-tiebreak", POINTER_TIEBREAK_RE,
            "pointer value used as an ordering key; pointer values vary "
            "across runs", findings)
    if rel_path.replace(os.sep, "/") != RANDOM_EXEMPT:
        check_regex_rule(
            rel_path, code, "raw-random", RAW_RANDOM_RE,
            "raw randomness source; use the seeded generator in "
            "util/random.h", findings)
    if rel_path.replace(os.sep, "/") not in RAW_IO_EXEMPT:
        raw_io_msg = ("direct OS file I/O bypasses the FileSystem seam; "
                      "route through io/env.h (io/file.h) so fault "
                      "injection and retries see the operation")
        check_regex_rule(rel_path, code, "raw-io", RAW_IO_CALL_RE,
                         raw_io_msg, findings)
        check_regex_rule(rel_path, code, "raw-io", RAW_IO_QUAL_RE,
                         raw_io_msg, findings)

    return [f for f in findings if f.line not in allowed[f.rule]]


def iter_source_files(root, paths):
    for path in paths:
        abs_path = path if os.path.isabs(path) else os.path.join(root, path)
        if os.path.isdir(abs_path):
            for dirpath, dirnames, filenames in os.walk(abs_path):
                dirnames.sort()
                for name in sorted(filenames):
                    if name.endswith((".h", ".cc", ".cpp")):
                        yield os.path.join(dirpath, name)
        elif os.path.isfile(abs_path):
            yield abs_path
        else:
            raise FileNotFoundError(abs_path)


def main(argv):
    parser = argparse.ArgumentParser(
        description="semis determinism lint (see module docstring)")
    parser.add_argument("--root", default=".",
                        help="repo root rule paths are interpreted "
                             "against (default: cwd)")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: src/ under --root)")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    paths = args.paths or ["src"]
    findings = []
    try:
        for abs_path in iter_source_files(root, paths):
            rel_path = os.path.relpath(os.path.abspath(abs_path), root)
            findings.extend(lint_file(abs_path, rel_path))
    except FileNotFoundError as err:
        sys.stderr.write("semis_lint: no such file or directory: %s\n"
                         % err)
        return 2

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for finding in findings:
        print(finding)
    if findings:
        print("semis_lint: %d finding(s)" % len(findings))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
